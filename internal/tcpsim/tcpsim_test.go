package tcpsim

import (
	"bytes"
	"testing"
	"time"

	"insidedropbox/internal/netem"
	"insidedropbox/internal/simrand"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/wire"
)

// testWorld wires two hosts through a 45 ms one-way core (≈90 ms RTT, the
// paper's storage path) unless the test overrides it.
type testWorld struct {
	sched          *simtime.Scheduler
	net            *netem.Network
	client, server *Stack
}

func newWorld(t testing.TB, clientAccess, serverAccess netem.AccessProfile, oneWay time.Duration) *testWorld {
	t.Helper()
	sched := simtime.NewScheduler()
	rng := simrand.New(1234, "tcptest")
	n := netem.New(sched, rng)
	n.SetCoreDelay("vp", "dc", oneWay)
	ch := n.AddHost(wire.MakeIP(10, 0, 0, 1), "vp", clientAccess)
	sh := n.AddHost(wire.MakeIP(184, 72, 0, 1), "dc", serverAccess)
	return &testWorld{
		sched:  sched,
		net:    n,
		client: NewStack(ch, sched, rng, DefaultConfig()),
		server: NewStack(sh, sched, rng, DefaultConfig()),
	}
}

func defaultWorld(t testing.TB) *testWorld {
	return newWorld(t, netem.AccessProfile{}, netem.AccessProfile{}, 45*time.Millisecond)
}

func TestHandshake(t *testing.T) {
	w := defaultWorld(t)
	var clientUp, serverUp bool
	w.server.Listen(443, func(c *Conn) { serverUp = true })
	conn := w.client.Dial(w.server.Host.IP, 443)
	conn.OnEstablished = func() { clientUp = true }
	w.sched.Run()
	if !clientUp || !serverUp {
		t.Fatalf("handshake incomplete: client=%v server=%v", clientUp, serverUp)
	}
	// Client established exactly one RTT after SYN (90 ms + jitter).
	est := conn.Established().Duration()
	if est < 90*time.Millisecond || est > 95*time.Millisecond {
		t.Fatalf("client established at %v, want ≈ 90 ms", est)
	}
}

func TestDataTransferWithMaterializedPrefix(t *testing.T) {
	w := defaultWorld(t)
	var gotBytes []byte
	gotSize := 0
	w.server.Listen(443, func(c *Conn) {
		c.OnRecv = func(data []byte, size int, push bool) {
			gotBytes = append(gotBytes, data...)
			gotSize += size
		}
	})
	conn := w.client.Dial(w.server.Host.IP, 443)
	header := []byte("POST /store HTTP/1.1\r\n\r\n")
	conn.OnEstablished = func() {
		conn.Write(header, len(header)+100000, true)
	}
	w.sched.Run()
	if gotSize != len(header)+100000 {
		t.Fatalf("received %d bytes, want %d", gotSize, len(header)+100000)
	}
	if !bytes.Equal(gotBytes, header) {
		t.Fatalf("materialized prefix corrupted: %q", gotBytes)
	}
}

func TestPSHOnWriteBoundaries(t *testing.T) {
	w := defaultWorld(t)
	var pushSizes []int
	total := 0
	w.server.Listen(443, func(c *Conn) {
		c.OnRecv = func(data []byte, size int, push bool) {
			total += size
			if push {
				pushSizes = append(pushSizes, total)
			}
		}
	})
	conn := w.client.Dial(w.server.Host.IP, 443)
	conn.OnEstablished = func() {
		conn.Write(nil, 5000, true) // 4 segments, PSH on last
		conn.Write(nil, 300, true)  // 1 segment, PSH
		conn.Write(nil, 2000, false)
	}
	w.sched.Run()
	if total != 7300 {
		t.Fatalf("total = %d", total)
	}
	if len(pushSizes) != 2 || pushSizes[0] != 5000 || pushSizes[1] != 5300 {
		t.Fatalf("PSH marks at %v, want [5000 5300]", pushSizes)
	}
}

func TestMaterializedBytesStartSegments(t *testing.T) {
	// Two writes, each with a materialized header: the second header must
	// arrive at the start of its own segment even though the first write's
	// virtual body is not segment-aligned.
	w := defaultWorld(t)
	type seg struct {
		data []byte
		size int
	}
	var segs []seg
	w.server.Listen(443, func(c *Conn) {
		c.OnRecv = func(data []byte, size int, push bool) {
			segs = append(segs, seg{append([]byte(nil), data...), size})
		}
	})
	conn := w.client.Dial(w.server.Host.IP, 443)
	h1, h2 := []byte("AAAA"), []byte("BBBB")
	conn.OnEstablished = func() {
		conn.Write(h1, 2001, true) // 2 segments: 1460, 541
		conn.Write(h2, 501, true)  // separate segment
	}
	w.sched.Run()
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3", len(segs))
	}
	if !bytes.Equal(segs[0].data, h1) || segs[0].size != 1460 {
		t.Fatalf("seg0 = %q/%d", segs[0].data, segs[0].size)
	}
	if len(segs[1].data) != 0 || segs[1].size != 541 {
		t.Fatalf("seg1 = %q/%d", segs[1].data, segs[1].size)
	}
	if !bytes.Equal(segs[2].data, h2) || segs[2].size != 501 {
		t.Fatalf("seg2 = %q/%d", segs[2].data, segs[2].size)
	}
}

func TestSlowStartPacing(t *testing.T) {
	// With IW=3 and no loss, transferring n segments takes
	// ceil(log2(n/3 + 1)) round trips after the handshake.
	w := defaultWorld(t)
	var done simtime.Time
	var established simtime.Time
	const size = 100 * 1460 // 100 segments
	got := 0
	w.server.Listen(443, func(c *Conn) {
		c.OnRecv = func(data []byte, size int, push bool) {
			got += size
		}
	})
	conn := w.client.Dial(w.server.Host.IP, 443)
	conn.OnEstablished = func() {
		established = w.sched.Now()
		conn.Write(nil, size, true)
	}
	w.server.Listen(444, nil)
	_ = established
	w.sched.Run()
	done = w.sched.Now()
	if got != size {
		t.Fatalf("received %d, want %d", got, size)
	}
	// 100 segments, IW=3, doubling each RTT: 3,6,12,24,48 done by 5 RTTs
	// (93 cumulative), finish in 6 rounds ≈ handshake (1 RTT) + 6 RTT.
	elapsed := done.Sub(simtime.Time(0))
	minWant := 6 * 90 * time.Millisecond
	maxWant := 8 * 95 * time.Millisecond
	if elapsed < minWant || elapsed > maxWant {
		t.Fatalf("transfer took %v, want between %v and %v", elapsed, minWant, maxWant)
	}
}

func TestLossRecovery(t *testing.T) {
	w := defaultWorld(t)
	w.net.SetCoreLoss(0.02)
	const size = 500 * 1460
	got := 0
	closed := false
	w.server.Listen(443, func(c *Conn) {
		c.OnRecv = func(data []byte, size int, push bool) { got += size }
		c.OnPeerClose = func() { c.Close() }
		c.OnClosed = func() { closed = true }
	})
	conn := w.client.Dial(w.server.Host.IP, 443)
	conn.OnEstablished = func() {
		conn.Write(nil, size, true)
		conn.Close()
	}
	w.sched.Run()
	if got != size {
		t.Fatalf("received %d bytes with 2%% loss, want %d", got, size)
	}
	if conn.Retransmits() == 0 {
		t.Fatal("expected retransmissions under loss")
	}
	if !closed {
		t.Fatal("server connection did not close")
	}
}

func TestBandwidthLimit(t *testing.T) {
	// Server limited to 1.25 MB/s (10 Mbit/s): a 5 MB retrieve should take
	// roughly 4 seconds.
	w := newWorld(t, netem.AccessProfile{}, netem.AccessProfile{UpRate: 1.25e6, DownRate: 1.25e6},
		45*time.Millisecond)
	const size = 5 << 20
	got := 0
	var start, end simtime.Time
	w.server.Listen(443, func(c *Conn) {
		start = w.sched.Now()
		c.Write(nil, size, true)
	})
	conn := w.client.Dial(w.server.Host.IP, 443)
	conn.OnRecv = func(data []byte, size int, push bool) {
		got += size
		end = w.sched.Now()
	}
	w.sched.Run()
	if got != size {
		t.Fatalf("received %d bytes", got)
	}
	dur := end.Sub(start).Seconds()
	rate := float64(size) / dur
	if rate > 1.3e6 || rate < 1.0e6 {
		t.Fatalf("goodput = %.0f B/s, want ≈ 1.21 MB/s", rate)
	}
}

func TestOrderlyClose(t *testing.T) {
	w := defaultWorld(t)
	events := []string{}
	w.server.Listen(443, func(c *Conn) {
		c.OnPeerClose = func() {
			events = append(events, "server-saw-fin")
			c.Close()
		}
		c.OnClosed = func() { events = append(events, "server-closed") }
	})
	conn := w.client.Dial(w.server.Host.IP, 443)
	conn.OnPeerClose = func() { events = append(events, "client-saw-fin") }
	conn.OnClosed = func() { events = append(events, "client-closed") }
	conn.OnEstablished = func() {
		conn.Write(nil, 100, true)
		conn.Close()
	}
	w.sched.Run()
	want := map[string]bool{}
	for _, e := range events {
		want[e] = true
	}
	for _, e := range []string{"server-saw-fin", "server-closed", "client-saw-fin", "client-closed"} {
		if !want[e] {
			t.Fatalf("missing event %q in %v", e, events)
		}
	}
	if conn.State() != "Closed" {
		t.Fatalf("client state = %s", conn.State())
	}
}

func TestAbortSendsRST(t *testing.T) {
	w := defaultWorld(t)
	reset := false
	w.server.Listen(443, func(c *Conn) {
		c.OnReset = func() { reset = true }
	})
	conn := w.client.Dial(w.server.Host.IP, 443)
	conn.OnEstablished = func() {
		conn.Write(nil, 10, true)
		w.sched.After(time.Second, conn.Abort)
	}
	w.sched.Run()
	if !reset {
		t.Fatal("server never saw RST")
	}
}

func TestDialNoListener(t *testing.T) {
	w := defaultWorld(t)
	reset := false
	conn := w.client.Dial(w.server.Host.IP, 9999)
	conn.OnReset = func() { reset = true }
	w.sched.Run()
	if !reset {
		t.Fatal("dialing a closed port should yield a reset")
	}
}

func TestBidirectionalEcho(t *testing.T) {
	w := defaultWorld(t)
	const n = 50000
	clientGot := 0
	w.server.Listen(443, func(c *Conn) {
		c.OnRecv = func(data []byte, size int, push bool) {
			c.Write(nil, size, push) // echo sizes back
		}
	})
	conn := w.client.Dial(w.server.Host.IP, 443)
	conn.OnRecv = func(data []byte, size int, push bool) { clientGot += size }
	conn.OnEstablished = func() { conn.Write(nil, n, true) }
	w.sched.Run()
	if clientGot != n {
		t.Fatalf("echo returned %d bytes, want %d", clientGot, n)
	}
}

func TestSequentialRequestResponseLatency(t *testing.T) {
	// The per-chunk acknowledgment pattern of the paper: each exchange
	// costs one RTT, so k exchanges cost ≈ k RTTs.
	w := defaultWorld(t)
	const rounds = 10
	count := 0
	w.server.Listen(443, func(c *Conn) {
		c.OnRecv = func(data []byte, size int, push bool) {
			c.Write(nil, 309, true) // the paper's per-chunk OK overhead
		}
	})
	conn := w.client.Dial(w.server.Host.IP, 443)
	var issue func()
	issue = func() {
		conn.Write(nil, 1000, true)
	}
	conn.OnRecv = func(data []byte, size int, push bool) {
		count++
		if count < rounds {
			issue()
		}
	}
	conn.OnEstablished = issue
	w.sched.Run()
	if count != rounds {
		t.Fatalf("completed %d rounds", count)
	}
	elapsed := w.sched.Now().Duration()
	// handshake 1 RTT + 10 request/response RTTs ≈ 11 * 90ms
	if elapsed < 10*90*time.Millisecond || elapsed > 12*95*time.Millisecond {
		t.Fatalf("10 sequential exchanges took %v, want ≈ 990 ms", elapsed)
	}
}

func TestRetransmitTimeoutGivesUp(t *testing.T) {
	// 100% loss after handshake: sender should eventually give up and reset.
	sched := simtime.NewScheduler()
	rng := simrand.New(5, "t")
	n := netem.New(sched, rng)
	n.SetCoreDelay("vp", "dc", 10*time.Millisecond)
	ch := n.AddHost(wire.MakeIP(10, 0, 0, 1), "vp", netem.AccessProfile{})
	sh := n.AddHost(wire.MakeIP(184, 72, 0, 1), "dc", netem.AccessProfile{})
	client := NewStack(ch, sched, rng, DefaultConfig())
	server := NewStack(sh, sched, rng, DefaultConfig())
	server.Listen(443, func(c *Conn) {})
	conn := client.Dial(sh.IP, 443)
	gotReset := false
	conn.OnReset = func() { gotReset = true }
	conn.OnEstablished = func() {
		n.SetCoreLoss(1.0)
		conn.Write(nil, 5000, true)
	}
	sched.Run()
	if !gotReset {
		t.Fatal("connection should give up after repeated RTOs")
	}
	if conn.Retransmits() < 3 {
		t.Fatalf("expected several retransmits, got %d", conn.Retransmits())
	}
}

func TestConnStateString(t *testing.T) {
	states := []ConnState{stateClosed, stateSynSent, stateSynRcvd, stateEstablished,
		stateFinWait1, stateFinWait2, stateCloseWait, stateLastAck, stateClosing}
	for _, st := range states {
		if st.String() == "?" {
			t.Fatalf("state %d has no name", st)
		}
	}
}

func TestManyParallelConnections(t *testing.T) {
	w := defaultWorld(t)
	const conns = 50
	done := 0
	w.server.Listen(443, func(c *Conn) {
		c.OnRecv = func(data []byte, size int, push bool) {
			c.Write(nil, size, true)
		}
	})
	for i := 0; i < conns; i++ {
		conn := w.client.Dial(w.server.Host.IP, 443)
		conn.OnRecv = func(data []byte, size int, push bool) { done++ }
		conn.OnEstablished = func() { conn.Write(nil, 100, true) }
	}
	w.sched.Run()
	if done != conns {
		t.Fatalf("%d/%d connections completed", done, conns)
	}
}

func BenchmarkBulkTransfer1MB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := defaultWorld(b)
		got := 0
		w.server.Listen(443, func(c *Conn) {
			c.OnRecv = func(data []byte, size int, push bool) { got += size }
		})
		conn := w.client.Dial(w.server.Host.IP, 443)
		conn.OnEstablished = func() { conn.Write(nil, 1<<20, true) }
		w.sched.Run()
		if got != 1<<20 {
			b.Fatalf("received %d", got)
		}
	}
}
