// Package tcpsim implements the TCP endpoints that run over the netem
// topology: three-way handshake, slow start with a configurable initial
// window, congestion avoidance, fast retransmit, retransmission timeouts,
// delayed acknowledgments, PSH semantics and FIN/RST teardown.
//
// Fidelity targets come from the paper's Sec. 4.4: flow throughput must be
// governed by TCP start-up times (θ bound, computed as in Dukkipati et al.)
// for short flows, by the receive/congestion window for long flows, and the
// per-segment behaviour (PSH flags on application message boundaries) must
// match what Tstat counts in Appendix A.
//
// Application data is written as spans: a materialized byte prefix (protocol
// framing that deep packet inspection can see) plus a virtual length. The
// sender cuts segments at span boundaries so materialized bytes always sit
// at the start of a segment, exactly as application writes map to segments
// on a real stack with PSH set.
package tcpsim

import (
	"fmt"
	"time"

	"insidedropbox/internal/netem"
	"insidedropbox/internal/simrand"
	"insidedropbox/internal/simtime"
	"insidedropbox/internal/wire"
)

// Config holds the tunables that differ between the Mar/Apr and Jun/Jul
// datasets (the paper observed Dropbox raising the server initial window
// when 1.4.0 was deployed).
type Config struct {
	// InitialWindow is the initial congestion window in segments (the paper
	// computes θ with IW=3; pre-1.4.0 Dropbox servers paused during the SSL
	// handshake because of a smaller IW).
	InitialWindow int
	// MinRTO floors the retransmission timeout (Linux-style 200 ms).
	MinRTO time.Duration
	// InitialRTO applies before any RTT sample (RFC 6298: 1 s).
	InitialRTO time.Duration
	// RecvWindow is the advertised receive window in bytes.
	RecvWindow int
	// DelayedAckTimeout flushes a pending ACK if no second segment arrives.
	DelayedAckTimeout time.Duration
}

// DefaultConfig matches a 2012-era Linux client talking to the simulated
// service.
func DefaultConfig() Config {
	return Config{
		InitialWindow: 3,
		MinRTO:        200 * time.Millisecond,
		InitialRTO:    time.Second,
		// 320 kB: comfortably above the bandwidth-delay product of the
		// paths under study (10 Mbit/s × 90 ms ≈ 112 kB) while keeping
		// queue overshoot below typical drop-tail buffers, as 2012 Linux
		// auto-tuning did.
		RecvWindow:        320 << 10,
		DelayedAckTimeout: 40 * time.Millisecond,
	}
}

// Stack is the per-host TCP layer. It installs itself as the host's frame
// receiver and demultiplexes to connections and listeners.
type Stack struct {
	Host  *netem.Host
	sched *simtime.Scheduler
	rng   *simrand.Source
	cfg   Config

	conns     map[connKey]*Conn
	listeners map[uint16]func(*Conn)
	nextPort  uint16
	ipID      uint16
}

type connKey struct {
	localPort  uint16
	remoteIP   wire.IP
	remotePort uint16
}

// NewStack attaches a TCP layer to the host.
func NewStack(host *netem.Host, sched *simtime.Scheduler, rng *simrand.Source, cfg Config) *Stack {
	s := &Stack{
		Host:      host,
		sched:     sched,
		rng:       rng.Fork("tcp/" + host.IP.String()),
		cfg:       cfg,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]func(*Conn)),
		nextPort:  32768,
	}
	host.Receive = s.receive
	return s
}

// Config returns the stack configuration.
func (s *Stack) Config() Config { return s.cfg }

// Listen registers an accept callback for a local port. The callback runs
// when a connection reaches the established state.
func (s *Stack) Listen(port uint16, accept func(*Conn)) {
	if _, dup := s.listeners[port]; dup {
		panic(fmt.Sprintf("tcpsim: duplicate listener on %s:%d", s.Host.IP, port))
	}
	s.listeners[port] = accept
}

// Dial opens a connection to the remote endpoint. The returned Conn is in
// the SYN-SENT state; OnEstablished fires when the handshake completes.
func (s *Stack) Dial(remote wire.IP, remotePort uint16) *Conn {
	port := s.allocPort(remote, remotePort)
	c := s.newConn(port, remote, remotePort, false)
	s.conns[connKey{port, remote, remotePort}] = c
	c.state = stateSynSent
	c.sendSyn()
	return c
}

func (s *Stack) allocPort(remote wire.IP, remotePort uint16) uint16 {
	for i := 0; i < 65536; i++ {
		p := s.nextPort
		s.nextPort++
		if s.nextPort == 0 {
			s.nextPort = 32768
		}
		if _, used := s.conns[connKey{p, remote, remotePort}]; !used && s.listeners[p] == nil {
			return p
		}
	}
	panic("tcpsim: ephemeral ports exhausted")
}

// ConnState is the TCP state machine position.
type ConnState uint8

// TCP states (TIME-WAIT is collapsed into Closed: the simulator frees the
// connection instead of holding 2MSL state).
const (
	stateClosed ConnState = iota
	stateSynSent
	stateSynRcvd
	stateEstablished
	stateFinWait1
	stateFinWait2
	stateCloseWait
	stateLastAck
	stateClosing
)

func (st ConnState) String() string {
	switch st {
	case stateClosed:
		return "Closed"
	case stateSynSent:
		return "SynSent"
	case stateSynRcvd:
		return "SynRcvd"
	case stateEstablished:
		return "Established"
	case stateFinWait1:
		return "FinWait1"
	case stateFinWait2:
		return "FinWait2"
	case stateCloseWait:
		return "CloseWait"
	case stateLastAck:
		return "LastAck"
	case stateClosing:
		return "Closing"
	default:
		return "?"
	}
}

// span is one application write: a materialized prefix plus virtual length.
type span struct {
	off  uint32 // starting sequence (relative to ISN+1)
	data []byte // materialized prefix
	size int    // true length
	push bool
}

// Conn is one TCP connection endpoint.
type Conn struct {
	stack  *Stack
	local  wire.Endpoint
	remote wire.Endpoint
	state  ConnState
	server bool

	// Application callbacks. All optional.
	OnEstablished func()
	// OnRecv delivers in-order payload: the materialized prefix and the true
	// segment size, with the sender's PSH flag.
	OnRecv      func(data []byte, size int, push bool)
	OnPeerClose func() // FIN received (peer will send no more data)
	OnReset     func() // RST received
	OnClosed    func() // connection fully terminated

	// Send state (relative sequence space: 0 = ISN, data starts at 1).
	iss        uint32
	sndUna     uint32
	sndNxt     uint32
	spans      []span // unacked + unsent spans, in order
	finQueued  bool
	finSeq     uint32
	cwnd       int
	ssthresh   int
	peerWnd    int
	dupAcks    int
	recoverTo  uint32
	inRecovery bool

	// Receive state.
	irs        uint32
	rcvNxt     uint32
	oob        map[uint32]*wire.Frame // out-of-order segments by seq
	ackPend    int                    // segments received since last ACK
	delAckID   simtime.EventID
	peerFin    bool
	peerFinSeq uint32

	// RTT estimation (RFC 6298).
	srtt, rttvar time.Duration
	rto          time.Duration
	rtoID        simtime.EventID
	rtoBackoff   int
	// timing samples: relative seq of a timed segment -> send time.
	timed map[uint32]simtime.Time

	// Metrics.
	retransmits int
	established simtime.Time
}

func (s *Stack) newConn(localPort uint16, remote wire.IP, remotePort uint16, server bool) *Conn {
	c := &Conn{
		stack:    s,
		local:    wire.Endpoint{Addr: s.Host.IP, Port: localPort},
		remote:   wire.Endpoint{Addr: remote, Port: remotePort},
		server:   server,
		iss:      uint32(s.rng.Uint64()),
		cwnd:     s.cfg.InitialWindow * wire.MSS,
		ssthresh: 1 << 30,
		peerWnd:  64 * 1024,
		oob:      make(map[uint32]*wire.Frame),
		timed:    make(map[uint32]simtime.Time),
		rto:      s.cfg.InitialRTO,
	}
	c.sndUna, c.sndNxt = 0, 0
	return c
}

// LocalEndpoint returns the local address/port.
func (c *Conn) LocalEndpoint() wire.Endpoint { return c.local }

// RemoteEndpoint returns the peer address/port.
func (c *Conn) RemoteEndpoint() wire.Endpoint { return c.remote }

// State returns the connection state name (diagnostics).
func (c *Conn) State() string { return c.state.String() }

// Established returns when the handshake completed (zero if it has not).
func (c *Conn) Established() simtime.Time { return c.established }

// Retransmits returns the count of retransmitted segments.
func (c *Conn) Retransmits() int { return c.retransmits }

// Write queues an application span: a materialized prefix (may be nil) plus
// the true size in bytes. push marks the final segment of the span with PSH,
// as a flushing application write does.
func (c *Conn) Write(data []byte, size int, push bool) {
	if size < len(data) {
		panic("tcpsim: span size below materialized length")
	}
	if size == 0 {
		return
	}
	if c.state != stateEstablished && c.state != stateSynSent && c.state != stateSynRcvd && c.state != stateCloseWait {
		return // writes after close are dropped
	}
	if c.finQueued {
		return
	}
	off := uint32(1)
	if n := len(c.spans); n > 0 {
		last := c.spans[n-1]
		off = last.off + uint32(last.size)
	} else if c.sndNxt > 0 {
		off = c.sndNxt
	}
	c.spans = append(c.spans, span{off: off, data: data, size: size, push: push})
	c.trySend()
}

// Close performs an orderly shutdown: a FIN is queued after pending data.
func (c *Conn) Close() {
	switch c.state {
	case stateEstablished, stateSynRcvd, stateSynSent:
		c.finQueued = true
		c.state = stateFinWait1
		c.trySend()
	case stateCloseWait:
		c.finQueued = true
		c.state = stateLastAck
		c.trySend()
	}
}

// Abort sends a RST and tears the connection down immediately.
func (c *Conn) Abort() {
	if c.state == stateClosed {
		return
	}
	f := c.newFrame(wire.FlagRST|wire.FlagACK, c.sndNxt, c.rcvNxt, nil, 0)
	c.stack.Host.Send(f)
	c.teardown(false)
}

func (c *Conn) teardown(notifyReset bool) {
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	c.rtoID.Cancel()
	c.delAckID.Cancel()
	delete(c.stack.conns, connKey{c.local.Port, c.remote.Addr, c.remote.Port})
	if notifyReset && c.OnReset != nil {
		c.OnReset()
	}
	if c.OnClosed != nil {
		c.OnClosed()
	}
}

// ---------- frame construction ----------

func (c *Conn) newFrame(flags wire.TCPFlags, relSeq, relAck uint32, data []byte, size int) *wire.Frame {
	c.stack.ipID++
	wnd := c.stack.cfg.RecvWindow / 8 // window-scale factor 8, as a 2012 stack
	if wnd > 0xffff {
		wnd = 0xffff
	}
	var ack uint32
	if flags.Has(wire.FlagACK) {
		ack = c.irs + relAck
	}
	return &wire.Frame{
		IP: wire.IPv4Header{
			ID: c.stack.ipID, TTL: 64, Protocol: wire.ProtocolTCP,
			Src: c.local.Addr, Dst: c.remote.Addr,
		},
		TCP: wire.TCPHeader{
			SrcPort: c.local.Port, DstPort: c.remote.Port,
			Seq: c.iss + relSeq, Ack: ack,
			Flags: flags, Window: uint16(wnd),
		},
		Payload:    data,
		PayloadLen: size,
	}
}

func (c *Conn) sendSyn() {
	f := c.newFrame(wire.FlagSYN, 0, 0, nil, 0)
	c.timed[1] = c.stack.sched.Now() // acked by relative ACK 1
	c.stack.Host.Send(f)
	c.sndNxt = 1
	c.armRTO()
}

func (c *Conn) sendSynAck() {
	f := c.newFrame(wire.FlagSYN|wire.FlagACK, 0, 1, nil, 0)
	c.timed[1] = c.stack.sched.Now()
	c.stack.Host.Send(f)
	c.sndNxt = 1
	c.armRTO()
}

// ---------- sending data ----------

// trySend emits as many segments as the congestion and peer windows allow.
func (c *Conn) trySend() {
	if c.state == stateClosed || c.state == stateSynSent || c.state == stateSynRcvd {
		return
	}
	for {
		inFlight := int(c.sndNxt - c.sndUna)
		wnd := c.cwnd
		if c.peerWnd < wnd {
			wnd = c.peerWnd
		}
		budget := wnd - inFlight
		if budget <= 0 {
			break
		}
		seg, ok := c.nextSegment(c.sndNxt, budget)
		if !ok {
			break
		}
		c.transmit(seg, false)
	}
	c.maybeSendFin()
}

// segment describes bytes to place on the wire.
type segment struct {
	relSeq uint32
	data   []byte
	size   int
	push   bool
}

// nextSegment builds the segment starting at relSeq, honoring MSS, span
// boundaries (so materialized bytes stay segment prefixes) and the window
// budget.
func (c *Conn) nextSegment(relSeq uint32, budget int) (segment, bool) {
	sp := c.spanAt(relSeq)
	if sp == nil {
		return segment{}, false
	}
	offInSpan := int(relSeq - sp.off)
	remain := sp.size - offInSpan
	n := wire.MSS
	if remain < n {
		n = remain
	}
	if budget < n {
		n = budget
	}
	if n <= 0 {
		return segment{}, false
	}
	var data []byte
	if offInSpan < len(sp.data) {
		end := offInSpan + n
		if end > len(sp.data) {
			end = len(sp.data)
		}
		data = sp.data[offInSpan:end]
	}
	push := sp.push && offInSpan+n == sp.size
	return segment{relSeq: relSeq, data: data, size: n, push: push}, true
}

func (c *Conn) spanAt(relSeq uint32) *span {
	for i := range c.spans {
		sp := &c.spans[i]
		if relSeq >= sp.off && relSeq < sp.off+uint32(sp.size) {
			return sp
		}
	}
	return nil
}

func (c *Conn) transmit(seg segment, retrans bool) {
	flags := wire.FlagACK
	if seg.push {
		flags |= wire.FlagPSH
	}
	f := c.newFrame(flags, seg.relSeq, c.rcvNxt, seg.data, seg.size)
	c.stack.Host.Send(f)
	if retrans {
		c.retransmits++
	} else {
		if seg.relSeq == c.sndNxt {
			c.sndNxt += uint32(seg.size)
		}
		// Karn: only time first transmissions.
		c.timed[seg.relSeq+uint32(seg.size)] = c.stack.sched.Now()
	}
	c.cancelDelAck() // data segments carry the ACK
	c.ackPend = 0
	c.armRTO()
}

func (c *Conn) maybeSendFin() {
	if !c.finQueued {
		return
	}
	// All data must be sent and segment space available.
	if c.spanAt(c.sndNxt) != nil {
		return
	}
	if c.finSeq != 0 {
		return // FIN already sent
	}
	c.finSeq = c.sndNxt
	f := c.newFrame(wire.FlagFIN|wire.FlagACK, c.sndNxt, c.rcvNxt, nil, 0)
	c.stack.Host.Send(f)
	c.sndNxt++
	c.timed[c.sndNxt] = c.stack.sched.Now()
	c.armRTO()
}

// ---------- timers ----------

func (c *Conn) armRTO() {
	c.rtoID.Cancel()
	if c.sndUna == c.sndNxt {
		return // nothing outstanding
	}
	rto := c.rto << uint(c.rtoBackoff)
	if rto > 60*time.Second {
		rto = 60 * time.Second
	}
	c.rtoID = c.stack.sched.After(rto, c.onRTO)
}

func (c *Conn) onRTO() {
	if c.state == stateClosed {
		return
	}
	c.rtoBackoff++
	if c.rtoBackoff > 7 {
		// Give up, as a real stack eventually does.
		c.teardown(true)
		return
	}
	inFlight := int(c.sndNxt - c.sndUna)
	c.ssthresh = maxInt(inFlight/2, 2*wire.MSS)
	c.cwnd = wire.MSS
	c.dupAcks = 0
	c.inRecovery = false
	clear(c.timed) // Karn: discard samples across a timeout
	c.retransmitFirst()
}

func (c *Conn) retransmitFirst() {
	switch {
	case c.state == stateSynSent:
		f := c.newFrame(wire.FlagSYN, 0, 0, nil, 0)
		c.stack.Host.Send(f)
		c.retransmits++
		c.armRTO()
	case c.state == stateSynRcvd:
		f := c.newFrame(wire.FlagSYN|wire.FlagACK, 0, 1, nil, 0)
		c.stack.Host.Send(f)
		c.retransmits++
		c.armRTO()
	case c.finSeq != 0 && c.sndUna == c.finSeq:
		f := c.newFrame(wire.FlagFIN|wire.FlagACK, c.finSeq, c.rcvNxt, nil, 0)
		c.stack.Host.Send(f)
		c.retransmits++
		c.armRTO()
	default:
		if seg, ok := c.nextSegment(c.sndUna, wire.MSS); ok {
			c.transmit(seg, true)
		}
		c.armRTO()
	}
}

func (c *Conn) cancelDelAck() { c.delAckID.Cancel() }

func (c *Conn) scheduleDelAck() {
	if c.delAckID.Pending() {
		return
	}
	c.delAckID = c.stack.sched.After(c.stack.cfg.DelayedAckTimeout, func() {
		c.sendAck()
	})
}

func (c *Conn) sendAck() {
	c.cancelDelAck()
	c.ackPend = 0
	f := c.newFrame(wire.FlagACK, c.sndNxt, c.rcvNxt, nil, 0)
	c.stack.Host.Send(f)
}

// ---------- receiving ----------

func (s *Stack) receive(now simtime.Time, f *wire.Frame) {
	key := connKey{f.TCP.DstPort, f.IP.Src, f.TCP.SrcPort}
	if c, ok := s.conns[key]; ok {
		c.handle(f)
		return
	}
	// New connection?
	if f.TCP.Flags.Has(wire.FlagSYN) && !f.TCP.Flags.Has(wire.FlagACK) {
		if _, ok := s.listeners[f.TCP.DstPort]; ok {
			c := s.newConn(f.TCP.DstPort, f.IP.Src, f.TCP.SrcPort, true)
			c.irs = f.TCP.Seq
			c.rcvNxt = 1
			c.state = stateSynRcvd
			s.conns[key] = c
			c.sendSynAck()
			return
		}
	}
	// No listener / unknown conn: RST unless the packet is itself a RST.
	if !f.TCP.Flags.Has(wire.FlagRST) {
		s.sendRawRST(f)
	}
}

func (s *Stack) sendRawRST(in *wire.Frame) {
	s.ipID++
	out := &wire.Frame{
		IP: wire.IPv4Header{ID: s.ipID, TTL: 64, Protocol: wire.ProtocolTCP,
			Src: in.IP.Dst, Dst: in.IP.Src},
		TCP: wire.TCPHeader{
			SrcPort: in.TCP.DstPort, DstPort: in.TCP.SrcPort,
			Seq: in.TCP.Ack, Ack: in.TCP.Seq + 1,
			Flags: wire.FlagRST | wire.FlagACK,
		},
	}
	s.Host.Send(out)
}

func (c *Conn) handle(f *wire.Frame) {
	if c.state == stateClosed {
		return
	}
	if f.TCP.Flags.Has(wire.FlagRST) {
		c.teardown(true)
		return
	}

	switch c.state {
	case stateSynSent:
		if f.TCP.Flags.Has(wire.FlagSYN) && f.TCP.Flags.Has(wire.FlagACK) {
			c.irs = f.TCP.Seq
			c.rcvNxt = 1
			c.processAck(f)
			c.state = stateEstablished
			c.established = c.stack.sched.Now()
			c.sendAck()
			if c.OnEstablished != nil {
				c.OnEstablished()
			}
			c.trySend()
		}
		return
	case stateSynRcvd:
		if f.TCP.Flags.Has(wire.FlagACK) && f.TCP.Ack-c.iss >= 1 {
			c.processAck(f)
			c.state = stateEstablished
			c.established = c.stack.sched.Now()
			if accept := c.stack.listeners[c.local.Port]; accept != nil {
				accept(c)
			}
			// The ACK completing the handshake may carry data.
			if f.PayloadLen > 0 || f.TCP.Flags.Has(wire.FlagFIN) {
				c.processData(f)
			}
			c.trySend()
		}
		return
	}

	if f.TCP.Flags.Has(wire.FlagACK) {
		c.processAck(f)
	}
	if f.PayloadLen > 0 || f.TCP.Flags.Has(wire.FlagFIN) {
		c.processData(f)
	}
	if c.state == stateClosed {
		return
	}
	c.trySend()
	c.checkCloseProgress(f)
}

func (c *Conn) processAck(f *wire.Frame) {
	relAck := f.TCP.Ack - c.iss
	c.peerWnd = int(f.TCP.Window) * 8

	if relAck > c.sndNxt {
		return // acks data we never sent; ignore
	}
	if relAck > c.sndUna {
		acked := int(relAck - c.sndUna)
		c.sndUna = relAck
		c.dupAcks = 0
		c.rtoBackoff = 0
		c.dropAckedSpans()
		// RTT sample.
		if t0, ok := c.timed[relAck]; ok {
			c.updateRTT(c.stack.sched.Now().Sub(t0))
		}
		for seq := range c.timed {
			if seq <= relAck {
				delete(c.timed, seq)
			}
		}
		if c.inRecovery {
			if relAck >= c.recoverTo {
				// Full recovery: deflate to ssthresh (NewReno).
				c.inRecovery = false
				c.cwnd = c.ssthresh
			} else {
				// Partial ACK: the next hole is lost too — retransmit it
				// immediately instead of waiting for an RTO.
				if seg, ok := c.nextSegment(c.sndUna, wire.MSS); ok {
					c.transmit(seg, true)
				}
			}
		} else if c.cwnd < c.ssthresh {
			c.cwnd += acked // slow start (byte counting)
		} else {
			c.cwnd += maxInt(wire.MSS*wire.MSS/c.cwnd, 1)
		}
		c.armRTO()
	} else if relAck == c.sndUna && c.sndNxt > c.sndUna && f.PayloadLen == 0 {
		c.dupAcks++
		if c.dupAcks == 3 && !c.inRecovery {
			// Fast retransmit + NewReno recovery.
			inFlight := int(c.sndNxt - c.sndUna)
			c.ssthresh = maxInt(inFlight/2, 2*wire.MSS)
			c.cwnd = c.ssthresh + 3*wire.MSS
			c.recoverTo = c.sndNxt
			c.inRecovery = true
			if seg, ok := c.nextSegment(c.sndUna, wire.MSS); ok {
				c.transmit(seg, true)
			} else if c.finSeq != 0 && c.sndUna == c.finSeq {
				fr := c.newFrame(wire.FlagFIN|wire.FlagACK, c.finSeq, c.rcvNxt, nil, 0)
				c.stack.Host.Send(fr)
				c.retransmits++
			}
		}
	}
}

// dropAckedSpans releases spans fully below sndUna.
func (c *Conn) dropAckedSpans() {
	i := 0
	for ; i < len(c.spans); i++ {
		sp := &c.spans[i]
		if sp.off+uint32(sp.size) > c.sndUna {
			break
		}
	}
	if i > 0 {
		c.spans = c.spans[i:]
	}
}

func (c *Conn) updateRTT(sample time.Duration) {
	if sample <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	rto := c.srtt + 4*c.rttvar
	if rto < c.stack.cfg.MinRTO {
		rto = c.stack.cfg.MinRTO
	}
	c.rto = rto
}

func (c *Conn) processData(f *wire.Frame) {
	relSeq := f.TCP.Seq - c.irs
	if relSeq == c.rcvNxt {
		c.acceptSegment(f)
		// Drain any buffered continuation.
		for {
			next, ok := c.oob[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.oob, c.rcvNxt)
			c.acceptSegment(next)
		}
		if c.state == stateClosed {
			return // an application callback aborted the connection
		}
		c.ackPend++
		if c.ackPend >= 2 || f.TCP.Flags.Has(wire.FlagFIN) || c.peerFin {
			c.sendAck()
		} else {
			c.scheduleDelAck()
		}
	} else if relSeq > c.rcvNxt {
		// Out of order: buffer and duplicate-ACK.
		if len(c.oob) < 4096 {
			c.oob[relSeq] = f
		}
		c.sendAck()
	} else {
		// Duplicate (retransmission already received): re-ACK.
		c.sendAck()
	}
}

// acceptSegment consumes an in-order segment: delivers payload and handles
// FIN ordering.
func (c *Conn) acceptSegment(f *wire.Frame) {
	if f.PayloadLen > 0 {
		c.rcvNxt += uint32(f.PayloadLen)
		if c.OnRecv != nil {
			c.OnRecv(f.Payload, f.PayloadLen, f.TCP.Flags.Has(wire.FlagPSH))
		}
	}
	if f.TCP.Flags.Has(wire.FlagFIN) {
		c.rcvNxt++
		c.peerFin = true
		c.peerFinSeq = c.rcvNxt
		switch c.state {
		case stateEstablished:
			c.state = stateCloseWait
		case stateFinWait1:
			c.state = stateClosing
		case stateFinWait2:
			c.teardownAfterAck()
			return
		}
		if c.OnPeerClose != nil {
			c.OnPeerClose()
		}
	}
}

func (c *Conn) teardownAfterAck() {
	c.sendAck()
	c.teardown(false)
}

// checkCloseProgress advances the closing state machine once our FIN is
// acknowledged.
func (c *Conn) checkCloseProgress(f *wire.Frame) {
	if c.finSeq == 0 {
		return
	}
	finAcked := c.sndUna >= c.finSeq+1
	switch c.state {
	case stateFinWait1:
		if finAcked {
			c.state = stateFinWait2
		}
	case stateClosing:
		if finAcked {
			c.teardown(false)
		}
	case stateLastAck:
		if finAcked {
			c.teardown(false)
		}
	}
	if c.state == stateFinWait2 && c.peerFin {
		c.teardownAfterAck()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
