package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func sampleFrame() *Frame {
	return &Frame{
		IP: IPv4Header{
			TOS: 0, ID: 4242, TTL: 64, Protocol: ProtocolTCP,
			Src: MakeIP(10, 0, 1, 2), Dst: MakeIP(184, 72, 1, 9),
		},
		TCP: TCPHeader{
			SrcPort: 51234, DstPort: 443,
			Seq: 1000, Ack: 2000,
			Flags: FlagACK | FlagPSH, Window: 65535,
		},
		Payload:    []byte("hello world"),
		PayloadLen: 11,
	}
}

func TestIPString(t *testing.T) {
	ip := MakeIP(192, 168, 1, 200)
	if got := ip.String(); got != "192.168.1.200" {
		t.Fatalf("IP string = %q", got)
	}
	b := ip.Bytes()
	if b != [4]byte{192, 168, 1, 200} {
		t.Fatalf("IP bytes = %v", b)
	}
}

func TestFlagsString(t *testing.T) {
	f := FlagSYN | FlagACK
	if got := f.String(); got != "SYN|ACK" {
		t.Fatalf("flags = %q", got)
	}
	if TCPFlags(0).String() != "none" {
		t.Fatal("zero flags should print none")
	}
	if !f.Has(FlagSYN) || f.Has(FlagPSH) {
		t.Fatal("Has misbehaves")
	}
}

func TestSerializeDecodeRoundTrip(t *testing.T) {
	f := sampleFrame()
	data := f.Serialize(1 << 16)
	if len(data) != HeadersLen+len(f.Payload) {
		t.Fatalf("serialized length = %d", len(data))
	}
	g, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.IP != f.IP || g.TCP != f.TCP {
		t.Fatalf("headers differ:\n got %+v %+v\nwant %+v %+v", g.IP, g.TCP, f.IP, f.TCP)
	}
	if !bytes.Equal(g.Payload, f.Payload) || g.PayloadLen != f.PayloadLen {
		t.Fatalf("payload differs: %q/%d", g.Payload, g.PayloadLen)
	}
}

func TestSnapLengthCapture(t *testing.T) {
	f := sampleFrame()
	f.Payload = bytes.Repeat([]byte("x"), 500)
	f.PayloadLen = 1460 // 960 bytes unmaterialized
	data := f.Serialize(96)
	if len(data) != 96 {
		t.Fatalf("snaplen capture length = %d, want 96", len(data))
	}
	g, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.PayloadLen != 1460 {
		t.Fatalf("true payload length lost: %d", g.PayloadLen)
	}
	if len(g.Payload) != 96-HeadersLen {
		t.Fatalf("captured payload = %d bytes", len(g.Payload))
	}
	if g.Truncated() != 1460-(96-HeadersLen) {
		t.Fatalf("Truncated() = %d", g.Truncated())
	}
}

func TestSerializeHeadersOnly(t *testing.T) {
	f := sampleFrame()
	data := f.Serialize(0)
	if len(data) != HeadersLen {
		t.Fatalf("headers-only capture = %d bytes", len(data))
	}
	g, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.PayloadLen != f.PayloadLen || len(g.Payload) != 0 {
		t.Fatalf("decode headers-only: len=%d captured=%d", g.PayloadLen, len(g.Payload))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTooShort) {
		t.Fatalf("nil decode err = %v", err)
	}
	f := sampleFrame()
	data := f.Serialize(1 << 16)
	data[0] = 0x65 // IPv6-ish version
	if _, err := Decode(data); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version err = %v", err)
	}
	data = f.Serialize(1 << 16)
	data[15]++ // corrupt src address
	if _, err := Decode(data); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corrupt packet err = %v", err)
	}
	data = f.Serialize(1 << 16)
	data[9] = 17 // UDP
	// fix the checksum so only the protocol check fires
	data[10], data[11] = 0, 0
	sum := foldChecksum(checksum(0, data[0:IPv4HeaderLen]))
	data[10], data[11] = byte(sum>>8), byte(sum)
	if _, err := Decode(data); !errors.Is(err, ErrNotTCP) {
		t.Fatalf("non-TCP err = %v", err)
	}
}

func TestCanonicalFlowKey(t *testing.T) {
	f := sampleFrame()
	key1, dir1 := Canonical(f)
	rev := sampleFrame()
	rev.IP.Src, rev.IP.Dst = f.IP.Dst, f.IP.Src
	rev.TCP.SrcPort, rev.TCP.DstPort = f.TCP.DstPort, f.TCP.SrcPort
	key2, dir2 := Canonical(rev)
	if key1 != key2 {
		t.Fatalf("bidirectional keys differ: %v vs %v", key1, key2)
	}
	if dir1 == dir2 {
		t.Fatal("directions should differ for reversed frame")
	}
}

func TestFlowReverse(t *testing.T) {
	f := sampleFrame()
	fl := FlowOf(f)
	r := fl.Reverse()
	if r.Src != fl.Dst || r.Dst != fl.Src {
		t.Fatal("reverse broken")
	}
	src, dst := fl.Endpoints()
	if src != fl.Src || dst != fl.Dst {
		t.Fatal("endpoints broken")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := sampleFrame()
	c := f.Clone()
	c.Payload[0] = 'X'
	if f.Payload[0] == 'X' {
		t.Fatal("clone shares payload")
	}
}

func TestRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(src, dst uint32, sp, dp uint16, seq, ack uint32, flags uint8, n uint16) bool {
		payload := bytes.Repeat([]byte{0xab}, int(n%1400))
		fr := &Frame{
			IP:         IPv4Header{TTL: 64, Protocol: ProtocolTCP, Src: IP(src), Dst: IP(dst)},
			TCP:        TCPHeader{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: TCPFlags(flags & 0x3f), Window: 1000},
			Payload:    payload,
			PayloadLen: len(payload),
		}
		data := fr.Serialize(1 << 16)
		g, err := Decode(data)
		if err != nil {
			return false
		}
		return g.IP == fr.IP && g.TCP == fr.TCP && g.PayloadLen == fr.PayloadLen
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTLSRecordRoundTrip(t *testing.T) {
	payload := []byte("abcdef")
	data := AppendRecord(nil, RecordApplicationData, payload)
	rec, rest, err := ParseRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != RecordApplicationData || !bytes.Equal(rec.Payload, payload) {
		t.Fatalf("record = %v %q", rec.Type, rec.Payload)
	}
	if len(rest) != 0 {
		t.Fatalf("leftover %d bytes", len(rest))
	}
}

func TestTLSPartialRecord(t *testing.T) {
	data := AppendRecord(nil, RecordHandshake, bytes.Repeat([]byte{1}, 100))
	rec, _, err := ParseRecord(data[:50])
	if !errors.Is(err, ErrPartialRecord) {
		t.Fatalf("err = %v", err)
	}
	if rec.Type != RecordHandshake || len(rec.Payload) != 45 {
		t.Fatalf("partial rec: %v %d", rec.Type, len(rec.Payload))
	}
	if _, _, err := ParseRecord(data[:3]); !errors.Is(err, ErrPartialRecord) {
		t.Fatal("short header should be partial")
	}
}

func TestTLSInvalidContentType(t *testing.T) {
	if _, _, err := ParseRecord([]byte{99, 3, 1, 0, 0}); err == nil {
		t.Fatal("invalid content type accepted")
	}
}

func TestBuildHandshakeExactSize(t *testing.T) {
	for _, n := range []int{60, 294, 1000, 4103} {
		rec := BuildHandshake(HandshakeClientHello, "client-lb.dropbox.com", n)
		if len(rec) != n {
			t.Fatalf("handshake record size = %d, want %d", len(rec), n)
		}
	}
}

func TestExtractSNIAndCert(t *testing.T) {
	var stream []byte
	stream = append(stream, BuildHandshake(HandshakeClientHello, "dl-client37.dropbox.com", 294)...)
	stream = append(stream, ChangeCipherSpec()...)
	if sni, ok := ExtractSNI(stream); !ok || sni != "dl-client37.dropbox.com" {
		t.Fatalf("SNI = %q %v", sni, ok)
	}
	if _, ok := ExtractCertName(stream); ok {
		t.Fatal("no certificate in stream")
	}

	var server []byte
	server = append(server, BuildHandshake(HandshakeServerHello, "", 80)...)
	server = append(server, BuildHandshake(HandshakeCertificate, "*.dropbox.com", 3900)...)
	if cn, ok := ExtractCertName(server); !ok || cn != "*.dropbox.com" {
		t.Fatalf("cert = %q %v", cn, ok)
	}
}

func TestExtractFromTruncatedCapture(t *testing.T) {
	// Certificate record truncated mid-padding: the name sits early in the
	// record so DPI should still find it.
	rec := BuildHandshake(HandshakeCertificate, "*.dropbox.com", 3900)
	if cn, ok := ExtractCertName(rec[:100]); !ok || cn != "*.dropbox.com" {
		t.Fatalf("truncated cert = %q %v", cn, ok)
	}
	// Truncated before the name completes: not extractable, not a crash.
	if _, ok := ExtractCertName(rec[:8]); ok {
		t.Fatal("should not extract from 8 bytes")
	}
}

func TestAppendOpaque(t *testing.T) {
	hdr := AppendOpaque(nil, 4096)
	if len(hdr) != RecordHeaderLen {
		t.Fatalf("opaque header = %d bytes", len(hdr))
	}
	rec, _, err := ParseRecord(hdr)
	if !errors.Is(err, ErrPartialRecord) || rec.Type != RecordApplicationData {
		t.Fatalf("opaque parse: %v %v", rec.Type, err)
	}
}

func TestAlertAndCCS(t *testing.T) {
	rec, _, err := ParseRecord(AlertClose())
	if err != nil || rec.Type != RecordAlert {
		t.Fatalf("alert: %v %v", rec.Type, err)
	}
	rec, _, err = ParseRecord(ChangeCipherSpec())
	if err != nil || rec.Type != RecordChangeCipherSpec {
		t.Fatalf("ccs: %v %v", rec.Type, err)
	}
}

func BenchmarkSerialize(b *testing.B) {
	f := sampleFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Serialize(96)
	}
}

func BenchmarkDecode(b *testing.B) {
	data := sampleFrame().Serialize(96)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
