package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements the TLS record framing used on simulated HTTPS
// connections. The format is a simplified-but-parseable TLS 1.0 layout: real
// 5-byte record headers and handshake framing, with ClientHello carrying a
// server name (SNI) and Certificate carrying the subject common name — the
// two fields the paper's probe extracts with "a classic DPI approach"
// (Sec. 3.1: the string *.dropbox.com signs all communications).
// Everything after the handshake is opaque application data, as it was to
// the authors.

// ContentType is the TLS record content type.
type ContentType uint8

// TLS record content types (RFC 5246 values).
const (
	RecordChangeCipherSpec ContentType = 20
	RecordAlert            ContentType = 21
	RecordHandshake        ContentType = 22
	RecordApplicationData  ContentType = 23
)

func (c ContentType) String() string {
	switch c {
	case RecordChangeCipherSpec:
		return "ChangeCipherSpec"
	case RecordAlert:
		return "Alert"
	case RecordHandshake:
		return "Handshake"
	case RecordApplicationData:
		return "ApplicationData"
	default:
		return fmt.Sprintf("ContentType(%d)", uint8(c))
	}
}

// HandshakeType identifies a handshake message.
type HandshakeType uint8

// Handshake message types (RFC 5246 values).
const (
	HandshakeClientHello     HandshakeType = 1
	HandshakeServerHello     HandshakeType = 2
	HandshakeCertificate     HandshakeType = 11
	HandshakeServerHelloDone HandshakeType = 14
	HandshakeClientKeyEx     HandshakeType = 16
	HandshakeFinished        HandshakeType = 20
)

// tlsVersion is the record-layer version we stamp (TLS 1.0, as in 2012).
const tlsVersion = 0x0301

// RecordHeaderLen is the size of a TLS record header.
const RecordHeaderLen = 5

// Record is one parsed TLS record.
type Record struct {
	Type    ContentType
	Payload []byte
}

// AppendRecord appends a serialized record to dst and returns the result.
func AppendRecord(dst []byte, typ ContentType, payload []byte) []byte {
	if len(payload) > 0xffff {
		panic("wire: TLS record payload exceeds 64KiB")
	}
	dst = append(dst, byte(typ), byte(tlsVersion>>8), byte(tlsVersion&0xff))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(payload)))
	return append(dst, payload...)
}

// ErrPartialRecord reports a record extending past the captured bytes.
var ErrPartialRecord = errors.New("wire: partial TLS record")

// ParseRecord parses the first record in data, returning it and the
// remaining bytes. A header whose declared payload extends past data yields
// ErrPartialRecord together with the partial record (type and the available
// payload prefix) — snap-length captures routinely truncate records.
func ParseRecord(data []byte) (Record, []byte, error) {
	if len(data) < RecordHeaderLen {
		return Record{}, nil, ErrPartialRecord
	}
	typ := ContentType(data[0])
	if typ < RecordChangeCipherSpec || typ > RecordApplicationData {
		return Record{}, nil, fmt.Errorf("wire: invalid TLS content type %d", data[0])
	}
	n := int(binary.BigEndian.Uint16(data[3:5]))
	if RecordHeaderLen+n > len(data) {
		return Record{Type: typ, Payload: data[RecordHeaderLen:]}, nil, ErrPartialRecord
	}
	return Record{Type: typ, Payload: data[RecordHeaderLen : RecordHeaderLen+n]},
		data[RecordHeaderLen+n:], nil
}

// handshake body layout: type (1B), length (3B), then for ClientHello and
// Certificate a uint16-prefixed name followed by zero padding up to length.

// BuildHandshake serializes a handshake message with the given name field,
// padded so the *record* (header included) occupies exactly recordLen bytes.
// recordLen must leave room for framing and the name.
func BuildHandshake(typ HandshakeType, name string, recordLen int) []byte {
	const overhead = RecordHeaderLen + 4 + 2 // record hdr + hs hdr + name len
	minLen := overhead + len(name)
	if recordLen < minLen {
		panic(fmt.Sprintf("wire: record length %d below minimum %d for %q", recordLen, minLen, name))
	}
	bodyLen := recordLen - RecordHeaderLen - 4
	body := make([]byte, 4+bodyLen)
	body[0] = byte(typ)
	body[1] = byte(bodyLen >> 16)
	body[2] = byte(bodyLen >> 8)
	body[3] = byte(bodyLen)
	binary.BigEndian.PutUint16(body[4:6], uint16(len(name)))
	copy(body[6:], name)
	return AppendRecord(nil, RecordHandshake, body)
}

// parseHandshake extracts (type, name) from a handshake record payload,
// tolerating truncated padding. ok is false if even the name is cut off.
func parseHandshake(payload []byte) (typ HandshakeType, name string, ok bool) {
	if len(payload) < 6 {
		return 0, "", false
	}
	typ = HandshakeType(payload[0])
	nameLen := int(binary.BigEndian.Uint16(payload[4:6]))
	if 6+nameLen > len(payload) {
		return typ, "", false
	}
	return typ, string(payload[6 : 6+nameLen]), true
}

// ExtractSNI scans captured bytes (typically the payload prefix of the first
// client packets) for a ClientHello and returns its server name.
func ExtractSNI(data []byte) (string, bool) {
	return scanHandshakeName(data, HandshakeClientHello)
}

// ExtractCertName scans captured bytes for a Certificate message and returns
// the subject common name (e.g. "*.dropbox.com").
func ExtractCertName(data []byte) (string, bool) {
	return scanHandshakeName(data, HandshakeCertificate)
}

func scanHandshakeName(data []byte, want HandshakeType) (string, bool) {
	rest := data
	for len(rest) > 0 {
		rec, r, err := ParseRecord(rest)
		if err != nil && !errors.Is(err, ErrPartialRecord) {
			return "", false
		}
		if rec.Type == RecordHandshake {
			if typ, name, ok := parseHandshake(rec.Payload); ok && typ == want {
				return name, true
			}
		}
		if err != nil { // partial record consumed everything
			return "", false
		}
		rest = r
	}
	return "", false
}

// AppendOpaque appends an application-data record of the given payload size
// whose body is not materialized beyond the record header: the returned
// slice grows by RecordHeaderLen only, while the caller accounts for size
// separately. Used when only record framing must be visible to DPI.
func AppendOpaque(dst []byte, size int) []byte {
	if size > 0xffff {
		panic("wire: opaque record exceeds 64KiB")
	}
	dst = append(dst, byte(RecordApplicationData), byte(tlsVersion>>8), byte(tlsVersion&0xff))
	return binary.BigEndian.AppendUint16(dst, uint16(size))
}

// AlertClose returns the serialized close-notify alert record (the
// "SSL_alert" packet visible at connection teardown in Fig. 19).
func AlertClose() []byte {
	return AppendRecord(nil, RecordAlert, []byte{1 /* warning */, 0 /* close_notify */})
}

// ChangeCipherSpec returns a serialized ChangeCipherSpec record.
func ChangeCipherSpec() []byte {
	return AppendRecord(nil, RecordChangeCipherSpec, []byte{1})
}
