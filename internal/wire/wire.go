// Package wire defines the packet formats that cross the simulated network
// and a gopacket-flavored decoding API for consuming them.
//
// Two representations exist, mirroring gopacket's two decoding paths:
//
//   - Frame is the in-memory fast path (compare DecodingLayerParser): the
//     simulator and the passive probe exchange *Frame values directly with
//     zero serialization cost.
//   - Serialize/Decode convert frames to and from real header bytes
//     (compare NewPacket). Captures honor a snap length: headers and the
//     first payload bytes are materialized, the rest is accounted but not
//     stored — exactly how production probes such as Tstat capture traffic.
//
// Only the payload prefix that deep packet inspection needs (TLS handshake
// records, HTTP-ish command framing) is ever materialized; bulk data bytes
// are represented by length only, keeping multi-gigabyte simulations cheap
// while every byte remains accounted for in flow metrics.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// IP is an IPv4 address in host byte order.
type IP uint32

// MakeIP builds an address from dotted-quad components.
func MakeIP(a, b, c, d byte) IP {
	return IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Bytes returns the 4-byte big-endian encoding.
func (ip IP) Bytes() [4]byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(ip))
	return b
}

// TCPFlags is the TCP flag bitfield.
type TCPFlags uint8

// TCP flag bits, in header order.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Has reports whether all bits in f are set.
func (t TCPFlags) Has(f TCPFlags) bool { return t&f == f }

func (t TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagPSH, "PSH"},
		{FlagFIN, "FIN"}, {FlagRST, "RST"}, {FlagURG, "URG"},
	}
	out := ""
	for _, n := range names {
		if t.Has(n.bit) {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// Header sizes. The simulator uses option-less fixed-size headers; byte
// accounting for TCP options (absent in the paper's models too — Tstat
// reports payload bytes) would only shift totals by a constant.
const (
	IPv4HeaderLen = 20
	TCPHeaderLen  = 20
	HeadersLen    = IPv4HeaderLen + TCPHeaderLen

	// MSS is the TCP maximum segment size used throughout the simulation
	// (Ethernet MTU 1500 minus the 40 header bytes).
	MSS = 1460
)

// IPv4Header is the fixed portion of an IPv4 header.
type IPv4Header struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src, Dst IP
}

// ProtocolTCP is the IP protocol number for TCP.
const ProtocolTCP = 6

// TCPHeader is an option-less TCP header.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            TCPFlags
	Window           uint16
	Urgent           uint16
}

// Frame is one TCP/IPv4 packet in flight. PayloadLen is the true payload
// size on the wire; Payload holds only the materialized prefix available to
// deep packet inspection (len(Payload) <= PayloadLen).
type Frame struct {
	IP         IPv4Header
	TCP        TCPHeader
	Payload    []byte
	PayloadLen int
}

// WireLen returns the total on-the-wire packet size in bytes.
func (f *Frame) WireLen() int { return HeadersLen + f.PayloadLen }

// Truncated reports how many payload bytes are not materialized.
func (f *Frame) Truncated() int { return f.PayloadLen - len(f.Payload) }

func (f *Frame) String() string {
	return fmt.Sprintf("%s:%d > %s:%d [%s] seq=%d ack=%d len=%d",
		f.IP.Src, f.TCP.SrcPort, f.IP.Dst, f.TCP.DstPort,
		f.TCP.Flags, f.TCP.Seq, f.TCP.Ack, f.PayloadLen)
}

// Endpoint identifies one side of a transport conversation,
// gopacket-style: protocol-independent address plus port.
type Endpoint struct {
	Addr IP
	Port uint16
}

func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Less orders endpoints lexicographically (address, then port), used for
// canonical bidirectional flow keys.
func (e Endpoint) Less(o Endpoint) bool {
	if e.Addr != o.Addr {
		return e.Addr < o.Addr
	}
	return e.Port < o.Port
}

// Flow is a unidirectional (src, dst) endpoint pair.
type Flow struct {
	Src, Dst Endpoint
}

// Endpoints returns the flow's endpoints in order.
func (fl Flow) Endpoints() (src, dst Endpoint) { return fl.Src, fl.Dst }

// Reverse returns the flow in the opposite direction.
func (fl Flow) Reverse() Flow { return Flow{Src: fl.Dst, Dst: fl.Src} }

func (fl Flow) String() string { return fl.Src.String() + "->" + fl.Dst.String() }

// FlowOf extracts the unidirectional flow of a frame.
func FlowOf(f *Frame) Flow {
	return Flow{
		Src: Endpoint{Addr: f.IP.Src, Port: f.TCP.SrcPort},
		Dst: Endpoint{Addr: f.IP.Dst, Port: f.TCP.DstPort},
	}
}

// FlowKey is the canonical bidirectional key: both directions of a
// conversation map to the same key. Dir reports which direction a given
// frame traveled.
type FlowKey struct {
	A, B Endpoint // A < B in Endpoint.Less order
}

// Direction labels which way a frame traveled relative to its FlowKey.
type Direction uint8

// Directions relative to the canonical FlowKey ordering.
const (
	DirAToB Direction = iota
	DirBToA
)

// Canonical returns the bidirectional key for a frame and the direction the
// frame traveled.
func Canonical(f *Frame) (FlowKey, Direction) {
	src := Endpoint{Addr: f.IP.Src, Port: f.TCP.SrcPort}
	dst := Endpoint{Addr: f.IP.Dst, Port: f.TCP.DstPort}
	if src.Less(dst) {
		return FlowKey{A: src, B: dst}, DirAToB
	}
	return FlowKey{A: dst, B: src}, DirBToA
}

// checksum computes the Internet checksum (RFC 1071) over data.
func checksum(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

func foldChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Serialize encodes the frame into real bytes, materializing at most snaplen
// bytes total (headers always included; use snaplen <= 0 for "headers
// only"). The returned slice is freshly allocated. IP and TCP checksums are
// computed over the materialized bytes.
func (f *Frame) Serialize(snaplen int) []byte {
	capPayload := len(f.Payload)
	if snaplen > 0 {
		avail := snaplen - HeadersLen
		if avail < 0 {
			avail = 0
		}
		if capPayload > avail {
			capPayload = avail
		}
	} else if snaplen == 0 {
		capPayload = 0
	}
	buf := make([]byte, HeadersLen+capPayload)

	// IPv4 header. TotalLength carries the true on-the-wire size so that
	// decoders recover PayloadLen even from truncated captures.
	total := f.WireLen()
	if total > 0xffff {
		panic(fmt.Sprintf("wire: frame exceeds IPv4 total length: %d", total))
	}
	buf[0] = 0x45 // version 4, IHL 5
	buf[1] = f.IP.TOS
	binary.BigEndian.PutUint16(buf[2:4], uint16(total))
	binary.BigEndian.PutUint16(buf[4:6], f.IP.ID)
	buf[8] = f.IP.TTL
	buf[9] = f.IP.Protocol
	binary.BigEndian.PutUint32(buf[12:16], uint32(f.IP.Src))
	binary.BigEndian.PutUint32(buf[16:20], uint32(f.IP.Dst))
	ipSum := foldChecksum(checksum(0, buf[0:IPv4HeaderLen]))
	binary.BigEndian.PutUint16(buf[10:12], ipSum)

	// TCP header.
	t := buf[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(t[0:2], f.TCP.SrcPort)
	binary.BigEndian.PutUint16(t[2:4], f.TCP.DstPort)
	binary.BigEndian.PutUint32(t[4:8], f.TCP.Seq)
	binary.BigEndian.PutUint32(t[8:12], f.TCP.Ack)
	t[12] = 5 << 4 // data offset 5 words
	t[13] = byte(f.TCP.Flags)
	binary.BigEndian.PutUint16(t[14:16], f.TCP.Window)
	binary.BigEndian.PutUint16(t[18:20], f.TCP.Urgent)
	copy(t[TCPHeaderLen:], f.Payload[:capPayload])

	// TCP checksum over pseudo-header + header + materialized payload.
	var pseudo [12]byte
	binary.BigEndian.PutUint32(pseudo[0:4], uint32(f.IP.Src))
	binary.BigEndian.PutUint32(pseudo[4:8], uint32(f.IP.Dst))
	pseudo[9] = ProtocolTCP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(TCPHeaderLen+capPayload))
	sum := checksum(0, pseudo[:])
	sum = checksum(sum, t[:TCPHeaderLen+capPayload])
	binary.BigEndian.PutUint16(t[16:18], foldChecksum(sum))

	return buf
}

// Decoding errors.
var (
	ErrTooShort    = errors.New("wire: packet too short")
	ErrBadVersion  = errors.New("wire: not an IPv4 packet")
	ErrBadChecksum = errors.New("wire: checksum mismatch")
	ErrNotTCP      = errors.New("wire: not a TCP packet")
)

// Decode parses serialized bytes back into a Frame. It accepts truncated
// (snap-length) captures: PayloadLen is recovered from the IP total length
// while Payload holds whatever was captured. The IP header checksum is
// verified; the TCP checksum is verified only for untruncated packets (a
// truncated capture cannot contain a valid transport checksum).
func Decode(data []byte) (*Frame, error) {
	if len(data) < HeadersLen {
		return nil, ErrTooShort
	}
	if data[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl != IPv4HeaderLen {
		return nil, fmt.Errorf("wire: unsupported IHL %d", ihl)
	}
	if foldChecksum(checksum(0, data[0:IPv4HeaderLen])) != 0 {
		return nil, ErrBadChecksum
	}
	if data[9] != ProtocolTCP {
		return nil, ErrNotTCP
	}
	f := &Frame{}
	f.IP.TOS = data[1]
	total := int(binary.BigEndian.Uint16(data[2:4]))
	f.IP.ID = binary.BigEndian.Uint16(data[4:6])
	f.IP.TTL = data[8]
	f.IP.Protocol = data[9]
	f.IP.Src = IP(binary.BigEndian.Uint32(data[12:16]))
	f.IP.Dst = IP(binary.BigEndian.Uint32(data[16:20]))
	if total < HeadersLen {
		return nil, fmt.Errorf("wire: IP total length %d below header size", total)
	}
	f.PayloadLen = total - HeadersLen

	t := data[IPv4HeaderLen:]
	f.TCP.SrcPort = binary.BigEndian.Uint16(t[0:2])
	f.TCP.DstPort = binary.BigEndian.Uint16(t[2:4])
	f.TCP.Seq = binary.BigEndian.Uint32(t[4:8])
	f.TCP.Ack = binary.BigEndian.Uint32(t[8:12])
	f.TCP.Flags = TCPFlags(t[13])
	f.TCP.Window = binary.BigEndian.Uint16(t[14:16])
	f.TCP.Urgent = binary.BigEndian.Uint16(t[18:20])

	captured := len(t) - TCPHeaderLen
	if captured > f.PayloadLen {
		captured = f.PayloadLen
	}
	if captured > 0 {
		f.Payload = append([]byte(nil), t[TCPHeaderLen:TCPHeaderLen+captured]...)
	}
	return f, nil
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	c := *f
	if f.Payload != nil {
		c.Payload = append([]byte(nil), f.Payload...)
	}
	return &c
}
