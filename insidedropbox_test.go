package insidedropbox

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFacadeCampaignAndExperiments(t *testing.T) {
	camp := RunCampaign(9, ScaleConfig{Campus1: 0.2, Campus2: 0.04, Home1: 0.015, Home2: 0.015})
	if len(camp.Datasets) != 4 {
		t.Fatalf("datasets = %d", len(camp.Datasets))
	}
	results := AllExperiments(camp)
	if len(results) < 20 {
		t.Fatalf("experiments = %d", len(results))
	}
	for _, r := range results {
		if r.ID == "" || r.Title == "" || r.Text == "" {
			t.Fatalf("incomplete result %+v", r.ID)
		}
	}
}

func TestFacadeSaveTraces(t *testing.T) {
	ds := GenerateDataset(Campus1(0.25), 5)
	var buf bytes.Buffer
	if err := SaveTraces(ds, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "vp,client,server") {
		t.Fatal("missing CSV header")
	}
	// Anonymized: no 10.x.y.z client addresses.
	for _, line := range strings.Split(out, "\n")[1:] {
		if strings.HasPrefix(line, "campus1,10.") {
			t.Fatal("client address not anonymized")
		}
	}
	if len(strings.Split(out, "\n")) < 100 {
		t.Fatal("suspiciously few trace rows")
	}
}

func TestFacadeWriteResults(t *testing.T) {
	dir := t.TempDir()
	camp := RunCampaign(11, ScaleConfig{Campus1: 0.15, Campus2: 0.03, Home1: 0.01, Home2: 0.01})
	results := AllExperiments(camp)[:3]
	if err := WriteResults(dir, results); err != nil {
		t.Fatal(err)
	}
	idx, err := os.ReadFile(filepath.Join(dir, "INDEX.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(idx), "table1") {
		t.Fatalf("index missing entries:\n%s", idx)
	}
	body, err := os.ReadFile(filepath.Join(dir, "table2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "metrics:") {
		t.Fatal("result file missing metrics section")
	}
}

func TestFacadeFleet(t *testing.T) {
	sc := ScaleConfig{Campus1: 0.15, Campus2: 0.03, Home1: 0.01, Home2: 0.01}
	fc := FleetConfig{Shards: 3, Workers: 2, DevicesScale: 2}

	rep := RunFleetCampaign(21, sc, fc)
	if len(rep.VPs) != 4 {
		t.Fatalf("fleet report has %d VPs", len(rep.VPs))
	}
	home1 := rep.ByName("home1")
	if home1 == nil || home1.Summary.Flows == 0 {
		t.Fatal("fleet report missing home1 aggregates")
	}
	if res := rep.Result(); res.Text == "" || res.Metrics["flows_total"] == 0 {
		t.Fatal("fleet result did not render")
	}

	// Streaming export matches the streamed stats and produces valid CSV.
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	n := 0
	stats := StreamDataset(Campus1(0.1), 3, FleetConfig{Shards: 2}, func(r *FlowRecord) {
		n++
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if n == 0 || n != stats.Records {
		t.Fatalf("streamed %d records, stats say %d", n, stats.Records)
	}
	if !strings.Contains(buf.String(), "vp,client,server") {
		t.Fatal("missing CSV header on streamed export")
	}

	// RunShardedCampaign with one shard reproduces RunCampaign.
	a := RunCampaign(9, sc)
	b := RunShardedCampaign(9, sc, FleetConfig{Shards: 1})
	for i := range a.Datasets {
		if len(a.Datasets[i].Records) != len(b.Datasets[i].Records) {
			t.Fatalf("%s: sharded(1) diverged from RunCampaign", a.Datasets[i].Cfg.Name)
		}
	}
}

func TestFacadeTestbed(t *testing.T) {
	fig1, fig19 := Testbed(13)
	if !strings.Contains(fig1.Text, "MsgCommitBatch") {
		t.Fatalf("testbed fig1 missing commit_batch:\n%s", fig1.Text)
	}
	if fig19.Metrics["captured_packets"] < 50 {
		t.Fatal("testbed captured too few packets")
	}
}
