// Package insidedropbox reproduces the measurement study "Inside Dropbox:
// Understanding Personal Cloud Storage Services" (Drago, Mellia, Munafò,
// Sperotto, Sadre, Pras — ACM IMC 2012) as a self-contained simulation and
// analysis laboratory.
//
// The package is a facade over the internal subsystems:
//
//   - a discrete-event network substrate (TCP with slow start and loss
//     recovery, a TLS-like record layer, DNS with the Table 1 name space);
//   - a from-scratch implementation of the 2012 Dropbox protocol — the
//     meta-data control plane, notification long-polling, Amazon-style
//     storage servers with per-chunk sequential acknowledgments, and the
//     v1.4.0 bundling the paper evaluates;
//   - a Tstat-like passive probe performing flow reassembly, RTT
//     estimation, PSH accounting and TLS/DNS/notification DPI;
//   - the paper's analysis methodology (f(u) tagging, chunk estimation,
//     session reconstruction, user grouping);
//   - calibrated workload generators standing in for the four European
//     vantage points of the study; and
//   - a sharded, streaming fleet engine (FleetConfig, RunFleet) that
//     scales those populations from thousands to millions of devices
//     across every core with bounded memory and bit-reproducible results.
//
// # The experiment API
//
// Every table and figure of the paper is a registered Experiment with a
// stable ID; Experiments lists the catalogue, and Run executes any
// selection of it under one cancellable entry point:
//
//	results, err := insidedropbox.Run(ctx,
//		insidedropbox.Spec{Seed: 2012},
//		insidedropbox.WithExperiments("table4", "figure9"),
//		insidedropbox.WithShards(8))
//
// Spec unifies seed, population scale, fleet sizing, capability profiles
// and experiment selection; functional options (WithShards, WithProfiles,
// WithProgress, WithResultsDir, ...) layer adjustments on top. Context
// cancellation threads through the fleet worker pool and the packet-level
// labs, so million-device campaigns abort cleanly mid-shard.
//
// # Record streams
//
// Records exposes any vantage point's flow-record stream as an iterator;
// the same abstraction feeds CSV/binary export, fleet aggregation and
// user analysis:
//
//	for r, err := range insidedropbox.Records(ctx, cfg, seed, fc) { ... }
//
// See cmd/experiments for the batch driver and EXPERIMENTS.md for the
// experiment catalogue and the fleet engine's sharding and determinism
// contract. The pre-context entry points (RunCampaign, AllExperiments,
// Table4, PerformanceLab, Testbed, ...) remain available, bit-identical,
// in deprecated.go.
package insidedropbox

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"context"

	"insidedropbox/internal/analysis"
	"insidedropbox/internal/backend"
	"insidedropbox/internal/capability"
	"insidedropbox/internal/experiments"
	"insidedropbox/internal/fleet"
	"insidedropbox/internal/scenario"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// Campaign is a generated four-vantage-point dataset collection.
type Campaign = experiments.Campaign

// Result is one regenerated table or figure: rendered text, named metrics
// and (on registry runs) ordered provenance metadata.
type Result = experiments.Result

// ResultMeta is one ordered provenance entry on a Result.
type ResultMeta = experiments.MetaEntry

// Experiment is one registered table, figure or lab of the catalogue.
type Experiment = experiments.Experiment

// ExperimentNeeds declares which shared session inputs an experiment
// consumes (campaign, packet stack, opt-in configuration).
type ExperimentNeeds = experiments.Needs

// Session carries one run's inputs and memoizes the expensive shared
// artifacts (campaign, packet labs, testbed) across experiments.
type Session = experiments.Session

// ScaleConfig controls population downscaling per vantage point.
type ScaleConfig = experiments.ScaleConfig

// Dataset is one vantage point's generated flow records.
type Dataset = workload.Dataset

// FlowRecord is one monitored TCP flow as exported by the probe.
type FlowRecord = traces.FlowRecord

// TraceWriter streams flow records as CSV.
type TraceWriter = traces.Writer

// BinaryTraceWriter streams flow records in the block-columnar binary
// format: ~3.5x smaller than CSV and allocation-free on the write side (the
// wire format is documented in internal/traces/binary.go).
type BinaryTraceWriter = traces.BinaryWriter

// BinaryTraceReader parses binary trace streams back into records.
type BinaryTraceReader = traces.BinaryReader

// ParallelBinaryTraceWriter is the binary trace writer with block
// encoding spread over a bounded worker pool — byte-identical output to
// BinaryTraceWriter for every worker count, for exports where
// serialization rather than generation is the bottleneck.
type ParallelBinaryTraceWriter = traces.ParallelBinaryWriter

// FlateTraceWriter streams flow records as the compressed archival
// format: flate-compressed binary blocks with a trailing seek index
// (internal/traces/flate.go documents the wire format). Flush finalizes
// the stream.
type FlateTraceWriter = traces.FlateWriter

// FlateTraceReader reads the compressed archival format; over an
// io.ReadSeeker it can seek straight to a record ordinal through the
// trailing index (SeekToRecord) and re-stream from there.
type FlateTraceReader = traces.FlateReader

// RecordWriter is the sink interface both trace serializations implement;
// format-agnostic exporters write through it.
type RecordWriter = traces.RecordWriter

// WriterSink adapts a RecordWriter into a fleet sink: the glue between a
// record stream and either trace serialization. The first write error
// latches into Err and suppresses further writes.
type WriterSink = fleet.WriterSink

// NewTraceWriter returns an anonymizing CSV trace writer (the format of
// the paper's public release), for streaming exports that never hold a
// full dataset.
func NewTraceWriter(w io.Writer) *TraceWriter {
	tw := traces.NewWriter(w)
	tw.Anonymize = true
	return tw
}

// NewBinaryTraceWriter returns an anonymizing binary trace writer — the
// performance path for population-scale exports (cmd/dropsim
// -format=binary).
func NewBinaryTraceWriter(w io.Writer) *BinaryTraceWriter {
	tw := traces.NewBinaryWriter(w)
	tw.Anonymize = true
	return tw
}

// NewBinaryTraceReader wraps a binary trace stream for reading.
func NewBinaryTraceReader(r io.Reader) *BinaryTraceReader {
	return traces.NewBinaryReader(r)
}

// NewParallelBinaryTraceWriter returns an anonymizing parallel binary
// trace writer encoding blocks on workers goroutines (workers < 1 means
// 1; output is byte-identical to NewBinaryTraceWriter for every count).
func NewParallelBinaryTraceWriter(w io.Writer, workers int) *ParallelBinaryTraceWriter {
	tw := traces.NewParallelBinaryWriter(w, workers)
	tw.Anonymize = true
	return tw
}

// NewFlateTraceWriter returns an anonymizing archival trace writer:
// flate-compressed binary blocks plus a trailing seek index (cmd/dropsim
// -format=binary-flate). Flush finalizes the stream — archival exports
// are written once, not appended.
func NewFlateTraceWriter(w io.Writer, workers int) *FlateTraceWriter {
	tw := traces.NewFlateWriter(w, workers)
	tw.Anonymize = true
	return tw
}

// NewFlateTraceReader wraps an archival trace stream for reading;
// pass an io.ReadSeeker (e.g. *os.File) to enable SeekToRecord.
func NewFlateTraceReader(r io.Reader) *FlateTraceReader {
	return traces.NewFlateReader(r)
}

// VPConfig parameterizes a vantage point population.
type VPConfig = workload.VPConfig

// DefaultScale returns the standard laptop-sized population scaling.
func DefaultScale() ScaleConfig { return experiments.DefaultScale() }

// SmallScale returns a fast, test-sized scaling.
func SmallScale() ScaleConfig { return experiments.SmallScale() }

// Vantage point constructors, exposed for custom campaigns.
var (
	Campus1 = workload.Campus1
	Campus2 = workload.Campus2
	Home1   = workload.Home1
	Home2   = workload.Home2
	// Campus1JunJul is the post-bundling second dataset of Table 4.
	Campus1JunJul = workload.Campus1JunJul
)

// GenerateDataset runs the workload generator for one vantage point,
// materializing every record (use Records for bounded-memory streaming).
func GenerateDataset(cfg VPConfig, seed int64) *Dataset {
	return workload.Generate(cfg, seed)
}

// ---------- fleet engine (sharded, streaming campaigns) ----------

// FleetConfig sizes the sharded fleet engine: the deterministic shard
// count (part of the experiment definition), the worker pool (wall-clock
// only, never results), and a population multiplier.
type FleetConfig = fleet.Config

// FleetStats is the merged ground truth of one vantage point's fleet run.
type FleetStats = fleet.VPStats

// ShardEvent is the per-shard completion event a FleetConfig.Observer
// receives: one per generated shard, with the shard's record count and
// wall time. Observation only — installing an observer never changes any
// generated output.
type ShardEvent = fleet.ShardEvent

// FleetSummary is the streaming aggregate of one vantage point: per-day
// volume accumulators, online flow-size histograms and device/namespace
// counters, at memory independent of the flow count.
type FleetSummary = fleet.Summary

// FleetReport is a campaign reduced to streaming aggregates — what a
// campaign looks like at populations too large to materialize.
type FleetReport = experiments.FleetReport

// ---------- capability profiles (what-if campaigns) ----------

// CapabilityProfile is one client capability vector: chunk size limit,
// bundling, deduplication, delta encoding, compression, commit pipelining
// and the jointly-tuned server initial window. The two Dropbox presets
// reproduce the historical Version-based clients bit for bit; the
// remaining presets are hypothetical clients for counterfactual campaigns.
type CapabilityProfile = capability.Profile

// CapabilityPresets returns the shipped profile catalogue: the two
// historical Dropbox clients, then the hypothetical profiles (no-dedup,
// no-delta, big-chunks-16mb, full-pipeline).
func CapabilityPresets() []CapabilityProfile { return capability.Presets() }

// CapabilityNames returns the preset profile names in catalogue order.
func CapabilityNames() []string { return capability.Names() }

// CapabilityByName resolves a preset profile by name ("dropbox-1.4.0";
// version aliases like "1.2.52" are accepted).
func CapabilityByName(name string) (CapabilityProfile, bool) { return capability.ByName(name) }

// ParseProfiles resolves a comma-separated preset list (the -profiles CLI
// flag format), preserving order.
func ParseProfiles(list string) ([]CapabilityProfile, error) { return capability.Parse(list) }

// WhatIfConfig drives a capability what-if campaign: one vantage-point
// population replayed under several capability profiles on the sharded
// fleet engine, compared against the first profile.
type WhatIfConfig = experiments.WhatIfConfig

// WhatIfReport is the what-if outcome: per-profile streaming aggregates
// (volumes, flow and operation counts, sync-latency distributions) plus
// the baseline-relative comparison table via Result.
type WhatIfReport = experiments.WhatIfReport

// ---------- backend capacity model ----------

// BackendRequest is one client flow reduced to server-side work: arrival
// time, service class (control/storage/notify), demand and locality.
type BackendRequest = backend.Request

// BackendConfig is one simulated server deployment: the node fleet plus
// its admission and routing policies.
type BackendConfig = backend.Config

// BackendReport is the observed load response of one backend simulation:
// per-request queueing-delay distributions, per-node utilization, drop
// and shed counts.
type BackendReport = backend.Report

// BackendPresets lists the backend capacity preset names in help order
// (infinite, provisioned, scarce).
func BackendPresets() []string { return backend.Presets() }

// BackendPresetConfig builds a named capacity preset sized against an
// arrival set (presets provision relative to the measured offered load,
// so the same name stays meaningful at any population scale).
func BackendPresetConfig(name string, reqs []BackendRequest) (BackendConfig, error) {
	return backend.PresetConfig(name, reqs)
}

// CollectBackendArrivals streams one vantage point through the fleet
// engine and returns its backend arrivals in canonical order — the input
// SimulateBackend replays. Worker count never changes the result; shard
// count is part of the experiment definition.
func CollectBackendArrivals(ctx context.Context, cfg VPConfig, seed int64, fc FleetConfig) ([]BackendRequest, FleetStats, error) {
	return backend.CollectArrivals(ctx, cfg, seed, fc)
}

// SimulateBackend replays an arrival set against a backend deployment and
// returns the load response. An infinite-capacity config is invisible:
// zero delay, zero drops, and the record streams that produced the
// arrivals are untouched (determinism-contract point 14).
func SimulateBackend(ctx context.Context, cfg BackendConfig, reqs []BackendRequest) (*BackendReport, error) {
	return backend.Simulate(ctx, cfg, reqs)
}

// ---------- declarative scenarios ----------

// ScenarioSpec is a schema-versioned declarative scenario: a population
// as a weighted mix of behavioral cohorts plus a time-varying backend
// timeline, compiled onto the engine configuration. The empty/default
// spec compiles to the legacy flag-driven configuration bit for bit.
type ScenarioSpec = scenario.Spec

// CompiledScenario is a scenario lowered onto VPConfig, fleet sizing and
// the backend capacity model — a pure function of (spec, seed).
type CompiledScenario = scenario.Compiled

// ScenarioStream is one compiled scenario's campaign output: merged
// ground truth (per-cohort counts included), the backend arrival set in
// canonical order, and the worker-invariant stream fingerprint.
type ScenarioStream = scenario.StreamResult

// LoadScenario reads and strictly validates a scenario spec file
// (unknown fields, bad weights and foreign schema versions are errors).
func LoadScenario(path string) (*ScenarioSpec, error) { return scenario.Load(path) }

// ParseScenario decodes and validates one scenario spec document.
func ParseScenario(data []byte) (*ScenarioSpec, error) { return scenario.Parse(data) }

// CompileScenario lowers a spec onto the engine configuration; a non-zero
// base.seed in the spec overrides seed.
func CompileScenario(sp *ScenarioSpec, seed int64) (*CompiledScenario, error) {
	return scenario.Compile(sp, seed)
}

// CollectScenarioStream runs a compiled scenario's population through the
// fleet engine once, producing stats, arrivals and the stream fingerprint
// in one pass. workers > 0 overrides the worker count (never results).
func CollectScenarioStream(ctx context.Context, c *CompiledScenario, workers int) (*ScenarioStream, error) {
	return scenario.CollectStream(ctx, c, workers)
}

// ScenarioCohortPresets lists the built-in cohort preset names a spec's
// cohorts may reference.
func ScenarioCohortPresets() []string { return scenario.Presets() }

// ---------- exports ----------

// SaveTraces writes a dataset's flow records as anonymized CSV, the format
// of the paper's public release.
func SaveTraces(ds *Dataset, w io.Writer) error {
	tw := NewTraceWriter(w)
	for _, r := range ds.Records {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// WriteResults renders results into dir, one text file per experiment,
// plus an index. Each file carries the result's title and rendered text,
// the ordered provenance metadata a registry Run attaches, and the named
// metrics in sorted-key order.
func WriteResults(dir string, results []*Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var index strings.Builder
	var body strings.Builder
	for _, r := range results {
		body.Reset()
		body.Grow(len(r.Title) + len(r.Text) + 64*(len(r.Meta)+len(r.Metrics)) + 32)
		body.WriteString(r.Title)
		body.WriteString("\n\n")
		body.WriteString(r.Text)
		if len(r.Meta) > 0 {
			body.WriteString("\nmeta:\n")
			for _, m := range r.Meta {
				fmt.Fprintf(&body, "  %s = %s\n", m.Key, m.Value)
			}
		}
		if len(r.Metrics) > 0 {
			body.WriteString("\nmetrics:\n")
			for _, k := range analysis.SortedKeys(r.Metrics) {
				fmt.Fprintf(&body, "  %s = %.6g\n", k, r.Metrics[k])
			}
		}
		// Namespaced IDs ("backend/baseline") flatten to one file per
		// result rather than growing a directory tree.
		name := filepath.Join(dir, strings.ReplaceAll(r.ID, "/", "-")+".txt")
		if err := os.WriteFile(name, []byte(body.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(&index, "%s\t%s\n", r.ID, r.Title)
	}
	return os.WriteFile(filepath.Join(dir, "INDEX.txt"), []byte(index.String()), 0o644)
}
