// Package insidedropbox reproduces the measurement study "Inside Dropbox:
// Understanding Personal Cloud Storage Services" (Drago, Mellia, Munafò,
// Sperotto, Sadre, Pras — ACM IMC 2012) as a self-contained simulation and
// analysis laboratory.
//
// The package is a facade over the internal subsystems:
//
//   - a discrete-event network substrate (TCP with slow start and loss
//     recovery, a TLS-like record layer, DNS with the Table 1 name space);
//   - a from-scratch implementation of the 2012 Dropbox protocol — the
//     meta-data control plane, notification long-polling, Amazon-style
//     storage servers with per-chunk sequential acknowledgments, and the
//     v1.4.0 bundling the paper evaluates;
//   - a Tstat-like passive probe performing flow reassembly, RTT
//     estimation, PSH accounting and TLS/DNS/notification DPI;
//   - the paper's analysis methodology (f(u) tagging, chunk estimation,
//     session reconstruction, user grouping);
//   - calibrated workload generators standing in for the four European
//     vantage points of the study; and
//   - a sharded, streaming fleet engine (FleetConfig, RunFleetCampaign)
//     that scales those populations from thousands to millions of devices
//     across every core with bounded memory and bit-reproducible results.
//
// Every table and figure of the paper regenerates through this API; see
// cmd/experiments for the batch driver and EXPERIMENTS.md for the
// experiment catalogue and the fleet engine's sharding and determinism
// contract.
package insidedropbox

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"insidedropbox/internal/analysis"
	"insidedropbox/internal/capability"
	"insidedropbox/internal/experiments"
	"insidedropbox/internal/fleet"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/workload"
)

// Campaign is a generated four-vantage-point dataset collection.
type Campaign = experiments.Campaign

// Result is one regenerated table or figure.
type Result = experiments.Result

// ScaleConfig controls population downscaling per vantage point.
type ScaleConfig = experiments.ScaleConfig

// Dataset is one vantage point's generated flow records.
type Dataset = workload.Dataset

// FlowRecord is one monitored TCP flow as exported by the probe.
type FlowRecord = traces.FlowRecord

// TraceWriter streams flow records as CSV.
type TraceWriter = traces.Writer

// BinaryTraceWriter streams flow records in the block-columnar binary
// format: ~3.5x smaller than CSV and allocation-free on the write side (the
// wire format is documented in internal/traces/binary.go).
type BinaryTraceWriter = traces.BinaryWriter

// BinaryTraceReader parses binary trace streams back into records.
type BinaryTraceReader = traces.BinaryReader

// RecordWriter is the sink interface both trace serializations implement;
// format-agnostic exporters write through it.
type RecordWriter = traces.RecordWriter

// NewTraceWriter returns an anonymizing CSV trace writer (the format of
// the paper's public release), for streaming exports that never hold a
// full dataset.
func NewTraceWriter(w io.Writer) *TraceWriter {
	tw := traces.NewWriter(w)
	tw.Anonymize = true
	return tw
}

// NewBinaryTraceWriter returns an anonymizing binary trace writer — the
// performance path for population-scale exports (cmd/dropsim
// -format=binary).
func NewBinaryTraceWriter(w io.Writer) *BinaryTraceWriter {
	tw := traces.NewBinaryWriter(w)
	tw.Anonymize = true
	return tw
}

// NewBinaryTraceReader wraps a binary trace stream for reading.
func NewBinaryTraceReader(r io.Reader) *BinaryTraceReader {
	return traces.NewBinaryReader(r)
}

// VPConfig parameterizes a vantage point population.
type VPConfig = workload.VPConfig

// DefaultScale returns the standard laptop-sized population scaling.
func DefaultScale() ScaleConfig { return experiments.DefaultScale() }

// SmallScale returns a fast, test-sized scaling.
func SmallScale() ScaleConfig { return experiments.SmallScale() }

// RunCampaign generates the four vantage-point datasets (Campus 1/2,
// Home 1/2) for the 42-day observation window.
func RunCampaign(seed int64, scale ScaleConfig) *Campaign {
	return experiments.RunCampaign(seed, scale)
}

// Vantage point constructors, exposed for custom campaigns.
var (
	Campus1 = workload.Campus1
	Campus2 = workload.Campus2
	Home1   = workload.Home1
	Home2   = workload.Home2
	// Campus1JunJul is the post-bundling second dataset of Table 4.
	Campus1JunJul = workload.Campus1JunJul
)

// GenerateDataset runs the workload generator for one vantage point.
func GenerateDataset(cfg VPConfig, seed int64) *Dataset {
	return workload.Generate(cfg, seed)
}

// ---------- fleet engine (sharded, streaming campaigns) ----------

// FleetConfig sizes the sharded fleet engine: the deterministic shard
// count (part of the experiment definition), the worker pool (wall-clock
// only, never results), and a population multiplier.
type FleetConfig = fleet.Config

// FleetStats is the merged ground truth of one vantage point's fleet run.
type FleetStats = fleet.VPStats

// FleetSummary is the streaming aggregate of one vantage point: per-day
// volume accumulators, online flow-size histograms and device/namespace
// counters, at memory independent of the flow count.
type FleetSummary = fleet.Summary

// FleetReport is a campaign reduced to streaming aggregates — what a
// campaign looks like at populations too large to materialize.
type FleetReport = experiments.FleetReport

// RunFleetCampaign streams all four vantage points through the sharded
// fleet engine with bounded memory: records are aggregated as they are
// generated and never accumulated, so FleetConfig.DevicesScale can grow
// the population far past what RunCampaign could hold.
func RunFleetCampaign(seed int64, scale ScaleConfig, fc FleetConfig) *FleetReport {
	return experiments.RunFleetCampaign(seed, scale, fc)
}

// RunShardedCampaign materializes a Campaign through the fleet engine.
// With fc.Shards == 1 it reproduces RunCampaign exactly; higher shard
// counts use every core at identical population sizes.
func RunShardedCampaign(seed int64, scale ScaleConfig, fc FleetConfig) *Campaign {
	return experiments.RunShardedCampaign(seed, scale, fc)
}

// GenerateFleetSummary streams one vantage point through the engine's
// aggregation path, returning the summary and generation ground truth.
func GenerateFleetSummary(cfg VPConfig, seed int64, fc FleetConfig) (*FleetSummary, FleetStats) {
	return fleet.Summarize(cfg, seed, fc)
}

// StreamDataset generates one vantage point through the sharded engine and
// delivers every record to emit in canonical shard order with bounded
// buffering — the path for exporting huge trace files without holding them.
func StreamDataset(cfg VPConfig, seed int64, fc FleetConfig, emit func(*traces.FlowRecord)) FleetStats {
	return fleet.StreamOrdered(cfg, seed, fc, emit)
}

// ---------- capability profiles (what-if campaigns) ----------

// CapabilityProfile is one client capability vector: chunk size limit,
// bundling, deduplication, delta encoding, compression, commit pipelining
// and the jointly-tuned server initial window. The two Dropbox presets
// reproduce the historical Version-based clients bit for bit; the
// remaining presets are hypothetical clients for counterfactual campaigns.
type CapabilityProfile = capability.Profile

// CapabilityPresets returns the shipped profile catalogue: the two
// historical Dropbox clients, then the hypothetical profiles (no-dedup,
// no-delta, big-chunks-16mb, full-pipeline).
func CapabilityPresets() []CapabilityProfile { return capability.Presets() }

// CapabilityNames returns the preset profile names in catalogue order.
func CapabilityNames() []string { return capability.Names() }

// CapabilityByName resolves a preset profile by name ("dropbox-1.4.0";
// version aliases like "1.2.52" are accepted).
func CapabilityByName(name string) (CapabilityProfile, bool) { return capability.ByName(name) }

// ParseProfiles resolves a comma-separated preset list (the -profiles CLI
// flag format), preserving order.
func ParseProfiles(list string) ([]CapabilityProfile, error) { return capability.Parse(list) }

// WhatIfConfig drives a capability what-if campaign: one vantage-point
// population replayed under several capability profiles on the sharded
// fleet engine, compared against the first profile.
type WhatIfConfig = experiments.WhatIfConfig

// WhatIfReport is the what-if outcome: per-profile streaming aggregates
// (volumes, flow and operation counts, sync-latency distributions) plus
// the baseline-relative comparison table via Result.
type WhatIfReport = experiments.WhatIfReport

// RunWhatIf executes a what-if campaign. Every profile's run is
// bit-reproducible from (seed, population, shards, profile), and the two
// Dropbox presets reproduce the legacy Version-based campaign output
// exactly.
func RunWhatIf(cfg WhatIfConfig) *WhatIfReport {
	return experiments.RunWhatIf(cfg)
}

// AllExperiments regenerates every campaign-level table and figure in
// paper order (packet-level labs are separate; see PerformanceLab and
// Testbed).
func AllExperiments(c *Campaign) []*Result {
	return experiments.All(c)
}

// Table4 regenerates the before/after bundling comparison (two Campus 1
// campaigns: Mar/Apr with client 1.2.52, Jun/Jul with 1.4.0).
func Table4(seed int64, scale float64) *Result {
	return experiments.Table4(seed, scale)
}

// PerformanceLab runs the packet-level storage experiments behind Figs. 9
// and 10: stratified flow sizes through the real protocol over simulated
// TCP, measured by the passive probe. quick trades coverage for speed.
func PerformanceLab(quick bool) (fig9, fig10 *Result) {
	store := experiments.DefaultPacketLab(false)
	retr := experiments.DefaultPacketLab(true)
	if quick {
		store = experiments.QuickPacketLab(false)
		retr = experiments.QuickPacketLab(true)
	}
	return experiments.RunPacketLabs(store, retr)
}

// Testbed runs the decrypting-proxy-equivalent dissection: one client
// against the full service with protocol message logging (Fig. 1) and
// annotated packet traces (Fig. 19).
func Testbed(seed int64) (fig1, fig19 *Result) {
	tb := experiments.RunTestbed(seed)
	return tb.Figure1, tb.Figure19
}

// SaveTraces writes a dataset's flow records as anonymized CSV, the format
// of the paper's public release.
func SaveTraces(ds *Dataset, w io.Writer) error {
	tw := traces.NewWriter(w)
	tw.Anonymize = true
	for _, r := range ds.Records {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// WriteResults renders results into dir, one text file per experiment,
// plus an index.
func WriteResults(dir string, results []*Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var index []byte
	for _, r := range results {
		name := filepath.Join(dir, r.ID+".txt")
		body := r.Title + "\n\n" + r.Text
		if len(r.Metrics) > 0 {
			body += "\nmetrics:\n"
			for _, k := range sortedKeys(r.Metrics) {
				body += fmt.Sprintf("  %s = %.6g\n", k, r.Metrics[k])
			}
		}
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			return err
		}
		index = append(index, fmt.Sprintf("%s\t%s\n", r.ID, r.Title)...)
	}
	return os.WriteFile(filepath.Join(dir, "INDEX.txt"), index, 0o644)
}

func sortedKeys(m map[string]float64) []string {
	return analysis.SortedKeys(m)
}
