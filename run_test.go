package insidedropbox

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// goldenScale is the small population used by the equivalence tests.
var goldenScale = ScaleConfig{Campus1: 0.15, Campus2: 0.03, Home1: 0.01, Home2: 0.01}

// TestRunMatchesLegacyFacade is the redesign's golden acceptance test:
// Run with a full-catalogue selection must reproduce the exact bytes of
// the deprecated entry points — AllExperiments + Table4 + PerformanceLab
// + Testbed — result for result.
func TestRunMatchesLegacyFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the packet labs")
	}
	const seed = 9
	spec := Spec{Seed: seed, Scale: goldenScale, Quick: true}
	results, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	legacy := map[string]*Result{}
	for _, r := range AllExperiments(RunCampaign(seed, goldenScale)) {
		legacy[r.ID] = r
	}
	legacy["table4"] = Table4(seed, goldenScale.Campus1)
	fig9, fig10 := PerformanceLab(true)
	legacy["figure9"], legacy["figure10"] = fig9, fig10
	fig1, fig19 := Testbed(seed)
	legacy["figure1"], legacy["figure19"] = fig1, fig19

	if len(results) != len(legacy) {
		t.Fatalf("Run produced %d results, legacy surface %d", len(results), len(legacy))
	}
	for _, got := range results {
		want := legacy[got.ID]
		if want == nil {
			t.Errorf("%s: not produced by the legacy surface", got.ID)
			continue
		}
		if got.Text != want.Text {
			t.Errorf("%s: rendered text diverged from the legacy entry point", got.ID)
		}
		if got.Title != want.Title {
			t.Errorf("%s: title %q != legacy %q", got.ID, got.Title, want.Title)
		}
		if !reflect.DeepEqual(got.Metrics, want.Metrics) {
			t.Errorf("%s: metrics diverged from the legacy entry point", got.ID)
		}
		// The registry's catalogue label must not drift from the title the
		// driver renders (they are maintained in two places).
		if e, ok := ExperimentByID(got.ID); !ok || e.Title != got.Title {
			t.Errorf("%s: registry title %q != rendered title %q", got.ID, e.Title, got.Title)
		}
	}
}

// TestRunSelection exercises glob selection, option layering and result
// metadata.
func TestRunSelection(t *testing.T) {
	results, err := Run(context.Background(), Spec{Seed: 11},
		WithScale(goldenScale),
		WithExperiments("table2", "table3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].ID != "table2" || results[1].ID != "table3" {
		t.Fatalf("selection produced %d results", len(results))
	}
	if len(results[0].Meta) == 0 || results[0].Meta[0].Key != "seed" {
		t.Fatalf("registry run missing provenance metadata: %+v", results[0].Meta)
	}

	if _, err := Run(context.Background(), Spec{}, WithExperiments("table99")); err == nil {
		t.Fatal("Run accepted a selection matching nothing")
	}

	// SkipPacket must not silently empty an explicit selection.
	if _, err := Run(context.Background(), Spec{SkipPacket: true},
		WithExperiments("figure9")); err == nil {
		t.Fatal("Run accepted a selection SkipPacket emptied")
	}
}

// TestRunProgressAndResultsDir checks the observer contract and the
// rendered output directory, including the meta section ordering and the
// run manifest.
func TestRunProgressAndResultsDir(t *testing.T) {
	dir := t.TempDir()
	var events []Progress
	_, err := Run(context.Background(), Spec{Seed: 3, Scale: goldenScale},
		WithExperiments("table3"),
		WithProgress(func(p Progress) { events = append(events, p) }),
		WithResultsDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	// The experiment-granularity contract: exactly one start and one
	// terminal event, in order, with shard events only in between.
	var exp []Progress
	for i, p := range events {
		if p.ShardEvent() {
			if i == 0 || i == len(events)-1 {
				t.Fatalf("shard event outside the experiment bracket: %+v", p)
			}
			if p.VP == "" || p.Records <= 0 || p.ShardsDone < 1 {
				t.Fatalf("malformed shard event: %+v", p)
			}
			continue
		}
		exp = append(exp, p)
	}
	if len(exp) != 2 || exp[0].Done || !exp[1].Done || exp[0].ID != "table3" {
		t.Fatalf("experiment events: %+v", exp)
	}
	if exp[0].Index != 1 || exp[0].Total != 1 {
		t.Fatalf("progress indexing: %+v", exp[0])
	}
	if exp[1].Err != nil || exp[1].Elapsed <= 0 {
		t.Fatalf("terminal event: %+v", exp[1])
	}
	// table3 generates all four vantage points, one shard each.
	if n := len(events) - len(exp); n != 4 {
		t.Fatalf("got %d shard events, want 4", n)
	}

	// Every ResultsDir run writes a validating manifest with shard
	// timings, experiment timings and a counter snapshot.
	m, err := LoadRunManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Seed != 3 || len(m.Experiments) != 1 || m.Experiments[0].ID != "table3" {
		t.Fatalf("manifest experiments: %+v", m.Experiments)
	}
	if len(m.Shards) != 4 {
		t.Fatalf("manifest shard timings: %+v", m.Shards)
	}
	if m.Telemetry.Counters["fleet.records"] == 0 {
		t.Fatalf("manifest counter snapshot missing fleet.records: %+v", m.Telemetry.Counters)
	}
	if m.Spec["experiments"] != "table3" || m.Spec["seed"] != "3" {
		t.Fatalf("manifest spec: %+v", m.Spec)
	}
	body, err := os.ReadFile(filepath.Join(dir, "table3.txt"))
	if err != nil {
		t.Fatal(err)
	}
	txt := string(body)
	metaAt := strings.Index(txt, "\nmeta:\n")
	metricsAt := strings.Index(txt, "\nmetrics:\n")
	if metaAt < 0 || metricsAt < 0 || metaAt > metricsAt {
		t.Fatalf("result file missing ordered meta/metrics sections:\n%s", txt)
	}
	if !strings.Contains(txt, "seed = 3") {
		t.Fatalf("meta section missing seed:\n%s", txt)
	}
}

// TestRunFailureEmitsTerminalEvent pins the failure-path observer
// contract: a failed experiment still emits its terminal Progress event,
// with Err set, so observers can't hang waiting for experiment N of M.
func TestRunFailureEmitsTerminalEvent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var events []Progress
	_, err := Run(ctx, Spec{Seed: 5, Scale: goldenScale},
		WithExperiments("table1", "table2"),
		WithProgress(func(p Progress) {
			events = append(events, p)
			// Cancel as table2 starts, after Run's pre-experiment ctx
			// check: the experiment itself fails.
			if p.ID == "table2" && !p.ShardEvent() && !p.Done {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	last := events[len(events)-1]
	if !last.Done || last.ID != "table2" || last.Err == nil {
		t.Fatalf("missing terminal failure event: %+v", last)
	}
	if !errors.Is(last.Err, context.Canceled) {
		t.Fatalf("terminal event error = %v", last.Err)
	}
}

// TestRunCancelMidRun cancels deterministically after the first
// experiment completes; the next one must surface context.Canceled.
func TestRunCancelMidRun(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results, err := Run(ctx, Spec{Seed: 5, Scale: goldenScale, Fleet: FleetConfig{Shards: 8}},
		WithExperiments("table1", "table2"),
		WithResultsDir(dir),
		WithProgress(func(p Progress) {
			if p.ID == "table1" && p.Done {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != 1 || results[0].ID != "table1" {
		t.Fatalf("partial results = %d", len(results))
	}
	// Completed results survive an interrupted run on disk.
	if _, statErr := os.Stat(filepath.Join(dir, "table1.txt")); statErr != nil {
		t.Fatalf("completed result not flushed after cancel: %v", statErr)
	}
}

// TestRecordsIteratorMatchesStreamDataset pins the facade iterator
// against the deprecated callback export: same records, same order, and a
// clean round trip through WriteRecordStream.
func TestRecordsIteratorMatchesStreamDataset(t *testing.T) {
	cfg := Campus1(0.1)
	fc := FleetConfig{Shards: 2}

	var legacyBuf bytes.Buffer
	tw := NewTraceWriter(&legacyBuf)
	legacyStats := StreamDataset(cfg, 3, fc, func(r *FlowRecord) {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	var iterBuf bytes.Buffer
	if err := WriteRecordStream(NewTraceWriter(&iterBuf),
		Records(context.Background(), cfg, 3, fc)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacyBuf.Bytes(), iterBuf.Bytes()) {
		t.Fatal("iterator export diverged from the deprecated StreamDataset export")
	}

	n := 0
	stats, err := StreamRecords(context.Background(), cfg, 3, fc, func(*FlowRecord) bool {
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != legacyStats.Records || stats.Records != legacyStats.Records {
		t.Fatalf("StreamRecords delivered %d records, legacy %d", n, legacyStats.Records)
	}
}

// TestExperimentCatalogueFacade: the facade re-exports resolve the same
// registry the internal package holds.
func TestExperimentCatalogueFacade(t *testing.T) {
	cat := Experiments()
	if len(cat) < 26 {
		t.Fatalf("catalogue too small: %d", len(cat))
	}
	if _, ok := ExperimentByID("whatif"); !ok {
		t.Fatal("whatif missing from facade catalogue")
	}
	sel, err := SelectExperiments("figure1?")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sel {
		if len(e.ID) != len("figure1")+1 || !strings.HasPrefix(e.ID, "figure1") {
			t.Fatalf("glob figure1? matched %q", e.ID)
		}
	}
	if len(sel) != 10 {
		t.Fatalf("figure1? matched %d experiments, want 10", len(sel))
	}
}
