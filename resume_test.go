package insidedropbox

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestRunCheckpointResume: a run cancelled mid-campaign resumes from its
// results checkpoint, recomputing only the unfinished experiments, and
// the combined results match an uninterrupted run exactly — Text and
// Metrics both. The manifest records the resume provenance.
func TestRunCheckpointResume(t *testing.T) {
	spec := Spec{Seed: 5, Scale: goldenScale, Fleet: FleetConfig{Shards: 4}}
	sel := []string{"table1", "table2", "table3"}

	straight, err := Run(context.Background(), spec, WithExperiments(sel...))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "experiments.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial, err := Run(ctx, spec,
		WithExperiments(sel...),
		WithCheckpoint(ckpt),
		WithProgress(func(p Progress) {
			if p.ID == "table2" && p.Done {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(partial) != 2 {
		t.Fatalf("cancelled run completed %d experiments, want 2", len(partial))
	}

	// Rerunning against the checkpoint without Resume must refuse.
	if _, err := Run(context.Background(), spec, WithExperiments(sel...), WithCheckpoint(ckpt)); err == nil ||
		!strings.Contains(err.Error(), "resume explicitly") {
		t.Fatalf("err = %v, want checkpoint resume-gate error", err)
	}

	resDir := t.TempDir()
	resumed, err := Run(context.Background(), spec,
		WithExperiments(sel...),
		WithCheckpoint(ckpt),
		WithResume(),
		WithResultsDir(resDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != len(straight) {
		t.Fatalf("resumed run returned %d results, want %d", len(resumed), len(straight))
	}
	for i, want := range straight {
		got := resumed[i]
		if got.ID != want.ID || got.Text != want.Text {
			t.Fatalf("result %s: resumed text differs from the uninterrupted run", want.ID)
		}
		if !reflect.DeepEqual(got.Metrics, want.Metrics) {
			t.Fatalf("result %s: resumed metrics differ:\n%v\nvs\n%v", want.ID, got.Metrics, want.Metrics)
		}
	}

	m, err := LoadRunManifest(filepath.Join(resDir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Resume == nil || m.Resume.ResumedExperiments != 2 || m.Resume.Checkpoint != ckpt {
		t.Fatalf("manifest resume provenance = %+v, want 2 resumed experiments from %s", m.Resume, ckpt)
	}
}

// TestRunCheckpointSpecMismatch: a checkpoint never resumes under a
// different spec — seed, scale, shard count and selection all key the
// fingerprint — but a differing worker count does not block it.
func TestRunCheckpointSpecMismatch(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "experiments.ckpt")
	spec := Spec{Seed: 5, Scale: goldenScale, Fleet: FleetConfig{Shards: 4}}
	if _, err := Run(context.Background(), spec, WithExperiments("table1"), WithCheckpoint(ckpt)); err != nil {
		t.Fatal(err)
	}

	other := spec
	other.Seed = 6
	if _, err := Run(context.Background(), other, WithExperiments("table1"), WithCheckpoint(ckpt), WithResume()); err == nil ||
		!strings.Contains(err.Error(), "different campaign spec") {
		t.Fatalf("err = %v, want fingerprint mismatch", err)
	}

	workers := spec
	workers.Fleet.Workers = 3
	res, err := Run(context.Background(), workers, WithExperiments("table1"), WithCheckpoint(ckpt), WithResume())
	if err != nil {
		t.Fatalf("worker count must not invalidate a results checkpoint: %v", err)
	}
	if len(res) != 1 {
		t.Fatalf("resumed %d results, want 1", len(res))
	}
}
