// Command tstat-analyze reads a flow-record CSV (as produced by dropsim or
// SaveTraces) and prints the paper's core characterizations: service
// breakdown, store/retrieve tagging, flow-size and RTT distributions, and
// user groups — the offline analysis pass of the study.
//
// Usage:
//
//	tstat-analyze FILE.csv
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"insidedropbox/internal/analysis"
	"insidedropbox/internal/classify"
	"insidedropbox/internal/traces"
	"insidedropbox/internal/wire"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tstat-analyze FILE.csv")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	r := traces.NewReader(f)
	var recs []*traces.FlowRecord
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "parse:", err)
			os.Exit(1)
		}
		recs = append(recs, rec)
	}
	fmt.Printf("%d flow records\n\n", len(recs))

	// Provider breakdown.
	provBytes := map[string]float64{}
	provFlows := map[string]int{}
	for _, rec := range recs {
		p := classify.ProviderOf(rec).String()
		provBytes[p] += float64(rec.BytesUp + rec.BytesDown)
		provFlows[p]++
	}
	tb := analysis.NewTable("Traffic by provider", "provider", "flows", "volume")
	for _, k := range analysis.SortedKeys(provBytes) {
		tb.AddRow(k, provFlows[k], analysis.HumanBytes(provBytes[k]))
	}
	fmt.Println(tb.String())

	// Dropbox service breakdown + storage analysis.
	var storeSizes, retrSizes, rtts []float64
	svcFlows := map[string]int{}
	store := map[wire.IP]int64{}
	retr := map[wire.IP]int64{}
	clients := map[wire.IP]bool{}
	for _, rec := range recs {
		if classify.ProviderOf(rec) != classify.ProvDropbox {
			continue
		}
		svc := classify.DropboxService(rec)
		svcFlows[svc.String()]++
		if rec.NotifyHost != 0 {
			clients[rec.Client] = true
		}
		if svc.String() == "Client (storage)" {
			switch classify.TagStorage(rec) {
			case classify.DirStore:
				storeSizes = append(storeSizes, float64(rec.BytesUp))
				store[rec.Client] += classify.Payload(rec, classify.DirStore)
			case classify.DirRetrieve:
				retrSizes = append(retrSizes, float64(rec.BytesDown))
				retr[rec.Client] += classify.Payload(rec, classify.DirRetrieve)
			}
			if rec.RTTSamples >= 10 && rec.MinRTT > 0 {
				rtts = append(rtts, float64(rec.MinRTT)/float64(time.Millisecond))
			}
		}
	}
	tb2 := analysis.NewTable("Dropbox flows by service", "service", "flows")
	for _, k := range analysis.SortedKeys(svcFlows) {
		tb2.AddRow(k, svcFlows[k])
	}
	fmt.Println(tb2.String())

	fmt.Println(analysis.QuantileSummary("store flow bytes", storeSizes))
	fmt.Println(analysis.QuantileSummary("retrieve flow bytes", retrSizes))
	fmt.Println(analysis.QuantileSummary("storage min RTT (ms)", rtts))
	fmt.Println()

	// User groups (Table 5 heuristics).
	groups := map[string]int{}
	for ip := range clients {
		groups[classify.GroupOf(store[ip], retr[ip]).String()]++
	}
	tb3 := analysis.NewTable("Households by user group", "group", "count")
	for _, k := range analysis.SortedKeys(groups) {
		tb3.AddRow(k, groups[k])
	}
	fmt.Println(tb3.String())

	// Devices per household.
	devs := classify.DevicesPerIP(recs)
	cnt := analysis.NewCounter()
	for _, n := range devs {
		cnt.Add(n)
	}
	if cnt.Total() > 0 {
		fmt.Printf("households with 1 device: %.0f%%; with >1: %.0f%%\n",
			100*cnt.Fraction(1), 100*cnt.FractionAtLeast(2))
	}
}
