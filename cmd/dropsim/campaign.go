package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"insidedropbox"
	"insidedropbox/internal/campaign"
	"insidedropbox/internal/cli"
	"insidedropbox/internal/telemetry"
)

// campaignSpec assembles the checkpointable campaign description from the
// shared flag vocabulary. Anonymize matches dropsim's default export:
// client addresses are replaced with stable opaque tokens, exactly as the
// flag-driven streaming path does.
func campaignSpec(vp string, scale float64, seed int64, shards int, devScale float64, profile, format string) campaign.Spec {
	return campaign.Spec{
		VP:           vp,
		Scale:        scale,
		Seed:         seed,
		Shards:       shards,
		DevicesScale: devScale,
		Profile:      profile,
		Format:       format,
		Anonymize:    true,
	}
}

// crashAfterShard reads the DROPSIM_CRASH_AFTER_SHARD kill-injection
// hook: when set to N, the process hard-exits (status 137, no cleanup —
// the scripted stand-in for SIGKILL) after N shards have committed their
// checkpoint entries. CI's campaign job uses it to prove a killed run
// resumes to byte-identical output.
func crashAfterShard() func(shard int) {
	n, err := strconv.Atoi(os.Getenv("DROPSIM_CRASH_AFTER_SHARD"))
	if err != nil || n < 1 {
		return nil
	}
	done := 0
	return func(shard int) {
		if done++; done >= n {
			fmt.Fprintf(os.Stderr, "crash injection: killing after %d shards\n", done)
			os.Exit(137)
		}
	}
}

// runCheckpointed is the -checkpoint path of the main dropsim command: a
// single-process campaign run with per-shard checkpoint/resume, fanned
// out over -jobs shard-range jobs.
func runCheckpointed(ctx context.Context, spec campaign.Spec, dir, out string, jobs int, resume bool, manifest string) {
	res, err := campaign.Run(ctx, campaign.Config{
		Spec:       spec,
		Dir:        dir,
		Out:        out,
		Jobs:       jobs,
		Resume:     resume,
		AfterShard: crashAfterShard(),
		Observer:   campaignProgress(),
	})
	if err != nil {
		cli.Exit(ctx, "campaign", err)
	}
	if manifest != "" {
		if err := saveCampaignManifest(manifest, spec, dir, res); err != nil {
			cli.Exit(ctx, "writing manifest", err)
		}
	}
	fmt.Fprintf(os.Stderr, "%s: %d flow records -> %s (%d bytes, hash %s; %d shards resumed, %d generated)\n",
		spec.VP, res.Records, res.ExportPath, res.ExportBytes, res.StreamHash, res.ResumedShards, res.GeneratedShards)
}

// campaignProgress prints one stderr line per completed shard or merge.
func campaignProgress() func(campaign.Event) {
	return func(ev campaign.Event) {
		switch ev.Stage {
		case "resume":
			fmt.Fprintf(os.Stderr, "  shard %d/%d resumed from checkpoint\n", ev.Done, ev.Total)
		case "shard":
			fmt.Fprintf(os.Stderr, "  shard %d done (%d/%d, %s records)\n",
				ev.Shard, ev.Done, ev.Total, cli.Count(int64(ev.Records)))
		case "merge":
			fmt.Fprintf(os.Stderr, "  merged %d shards\n", ev.Total)
		}
	}
}

// saveCampaignManifest writes the run manifest for a checkpointed
// campaign: spec provenance, the export stream hash, and — on resumed
// runs — the checkpoint resume record.
func saveCampaignManifest(path string, spec campaign.Spec, dir string, res *campaign.Result) error {
	m := telemetry.NewManifest(spec.Seed)
	m.Spec = map[string]string{
		"vp":            spec.VP,
		"scale":         strconv.FormatFloat(spec.Scale, 'g', -1, 64),
		"shards":        strconv.Itoa(spec.Shards),
		"devices_scale": strconv.FormatFloat(spec.DevicesScale, 'g', -1, 64),
		"format":        spec.Format,
		"profile":       spec.Profile,
		"campaign_dir":  dir,
	}
	m.StreamHash = res.StreamHash
	telemetry.SetInfo("stream_hash", res.StreamHash)
	if res.ResumedShards > 0 {
		m.Resume = &telemetry.ResumeInfo{Checkpoint: dir, ResumedShards: res.ResumedShards}
	}
	return m.Save(path)
}

// campaignMain dispatches the `dropsim campaign plan|run|merge`
// subcommands — the multi-process fan-out flow. plan splits the shard
// space into job ranges and records them; run executes one planned job
// (its own checkpoint file, so concurrent job processes never contend);
// merge folds the completed parts into the final export.
func campaignMain(args []string) {
	if len(args) < 1 {
		campaignUsage()
		os.Exit(2)
	}
	ctx, stop := cli.SignalContext()
	defer stop()
	switch args[0] {
	case "plan":
		campaignPlan(args[1:])
	case "run":
		campaignRun(ctx, args[1:])
	case "merge":
		campaignMerge(ctx, args[1:])
	default:
		fmt.Fprintf(os.Stderr, "unknown campaign subcommand %q\n", args[0])
		campaignUsage()
		os.Exit(2)
	}
}

func campaignUsage() {
	fmt.Fprintln(os.Stderr, `usage:
  dropsim campaign plan  -dir DIR -jobs N [-vp VP] [-scale F] [-seed N] [-shards N]
                         [-devices-scale F] [-profile NAME] [-format FMT]
  dropsim campaign run   -dir DIR -job N [-resume]
  dropsim campaign merge -dir DIR [-o FILE] [-manifest FILE]`)
}

func campaignPlan(args []string) {
	fs := flag.NewFlagSet("campaign plan", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory (required)")
	jobs := fs.Int("jobs", 1, "number of shard-range jobs to split the campaign into")
	vp := fs.String("vp", "home1", "vantage point: "+strings.Join(cli.VantageNames(), ", "))
	scale := fs.Float64("scale", 0.05, "population scale versus the paper")
	seed := fs.Int64("seed", 42, "random seed")
	shards := fs.Int("shards", 1, "deterministic population shards (part of the result)")
	devScale := fs.Float64("devices-scale", 1, "population multiplier on top of -scale")
	profile := fs.String("profile", "", "capability profile overriding the VP's client version: "+
		strings.Join(insidedropbox.CapabilityNames(), "|"))
	format := fs.String("format", "csv", "final export format: csv, binary, or binary-flate")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "campaign plan: -dir is required")
		os.Exit(2)
	}
	spec := campaignSpec(*vp, *scale, *seed, *shards, *devScale, *profile, *format)
	plan, err := campaign.WritePlan(*dir, spec, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign plan:", err)
		os.Exit(1)
	}
	fmt.Printf("planned %d jobs over %d shards in %s\n", len(plan.Jobs), plan.Spec.Shards, *dir)
	for _, j := range plan.Jobs {
		fmt.Printf("  job %d: shards [%d, %d)\n", j.Job, j.Lo, j.Hi)
	}
}

func campaignRun(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory holding the plan (required)")
	job := fs.Int("job", -1, "planned job index to execute (required)")
	resume := fs.Bool("resume", false, "continue this job from its checkpoint")
	fs.Parse(args)
	if *dir == "" || *job < 0 {
		fmt.Fprintln(os.Stderr, "campaign run: -dir and -job are required")
		os.Exit(2)
	}
	res, err := campaign.RunJob(ctx, *dir, *job, campaign.JobOptions{
		Resume:     *resume,
		Observer:   campaignProgress(),
		AfterShard: crashAfterShard(),
	})
	if err != nil {
		cli.Exit(ctx, fmt.Sprintf("campaign job %d", *job), err)
	}
	fmt.Fprintf(os.Stderr, "job %d: %d shards done (%d resumed, %d generated)\n",
		*job, res.ResumedShards+res.GeneratedShards, res.ResumedShards, res.GeneratedShards)
}

func campaignMerge(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("campaign merge", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory holding the plan and completed parts (required)")
	out := fs.String("o", "", "final export path (default DIR/export.<ext>)")
	manifest := fs.String("manifest", "", "write a run manifest to this file")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "campaign merge: -dir is required")
		os.Exit(2)
	}
	plan, err := campaign.LoadPlan(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign merge:", err)
		os.Exit(1)
	}
	res, err := campaign.Merge(ctx, plan.Spec, *dir, *out)
	if err != nil {
		cli.Exit(ctx, "campaign merge", err)
	}
	if *manifest != "" {
		if err := saveCampaignManifest(*manifest, plan.Spec, *dir, res); err != nil {
			cli.Exit(ctx, "writing manifest", err)
		}
	}
	fmt.Fprintf(os.Stderr, "%s: %d flow records -> %s (%d bytes, hash %s)\n",
		plan.Spec.VP, res.Records, res.ExportPath, res.ExportBytes, res.StreamHash)
}
