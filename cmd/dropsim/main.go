// Command dropsim generates one vantage point's 42-day flow-record dataset
// and writes it as anonymized CSV (the format of the paper's public trace
// release).
//
// Usage:
//
//	dropsim [-vp campus1|campus2|home1|home2] [-scale F] [-seed N] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"insidedropbox"
)

func main() {
	vp := flag.String("vp", "home1", "vantage point: campus1, campus2, home1, home2")
	scale := flag.Float64("scale", 0.05, "population scale versus the paper")
	seed := flag.Int64("seed", 42, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var cfg insidedropbox.VPConfig
	switch *vp {
	case "campus1":
		cfg = insidedropbox.Campus1(*scale)
	case "campus1-junjul":
		cfg = insidedropbox.Campus1JunJul(*scale)
	case "campus2":
		cfg = insidedropbox.Campus2(*scale)
	case "home1":
		cfg = insidedropbox.Home1(*scale)
	case "home2":
		cfg = insidedropbox.Home2(*scale)
	default:
		fmt.Fprintf(os.Stderr, "unknown vantage point %q\n", *vp)
		os.Exit(2)
	}

	ds := insidedropbox.GenerateDataset(cfg, *seed)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := insidedropbox.SaveTraces(ds, w); err != nil {
		fmt.Fprintln(os.Stderr, "writing traces:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s: %d flow records, %d Dropbox devices, %.2f GB total\n",
		cfg.Name, len(ds.Records), ds.DropboxDevices, ds.TotalVolume()/1e9)
}
