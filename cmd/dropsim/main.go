// Command dropsim generates one vantage point's 42-day flow-record dataset
// through the sharded fleet engine and writes it as anonymized CSV (the
// format of the paper's public trace release), as the binary columnar
// trace format (-format=binary, ~3.5x smaller and allocation-free on
// write), or as the compressed archival tier (-format=binary-flate:
// flate-framed binary blocks with a trailing seek index, so readers can
// re-stream any record range without decompressing the file) — or, with
// -summary, reduces it to streaming aggregates without ever materializing
// records.
//
// Usage:
//
//	dropsim [-vp campus1|campus2|home1|home2] [-scale F] [-seed N]
//	        [-shards N] [-workers N] [-devices-scale F]
//	        [-profile NAME] [-format csv|binary|binary-flate]
//	        [-serialize-workers N] [-summary] [-o FILE]
//	        [-backend infinite|provisioned|scarce] [-scenario FILE]
//	        [-manifest FILE] [-pprof ADDR] [-cpuprofile FILE]
//	        [-memprofile FILE] [-telemetry-interval DUR]
//
// -scenario compiles a declarative scenario spec (see scenarios/) and
// takes its population from there: the spec's base section overrides
// -vp, -scale, -shards, -devices-scale and -profile (a base.seed
// overrides -seed), and its cohorts section splits the population into
// behavioral cohorts. A spec backend section drives the post-export
// replay — preset sizing from the base load, arrival surges, and
// timeline events (outages, rollouts) on the event queue; -backend, when
// also set, overrides just the preset.
//
// -serialize-workers spreads binary/binary-flate block encoding over a
// worker pool (0 = GOMAXPROCS). Serialization parallelism never changes
// the output: the stream is byte-identical for every worker count, so
// the manifest stream hash is stable across -serialize-workers settings.
//
// -manifest writes a run manifest (the schema-versioned JSON of
// insidedropbox.RunManifest) with the FNV-1a hash of the serialized
// stream, per-shard timings and a telemetry snapshot — the reproducibility
// record the telemetry-on/off golden check in CI compares.
//
// -backend tees the record stream into the server capacity model
// (internal/backend) and, after the export, replays it against the named
// preset, printing per-node utilization, drop counts and queueing-delay
// quantiles to stderr. The tee is observation-only: the exported bytes and
// the manifest stream hash are identical with and without -backend, and an
// infinite preset reports zero delay and zero drops (the determinism
// contract's point 14). With -manifest, the backend.* counters land in the
// manifest's telemetry snapshot.
//
// Records stream from the generator shards straight into the trace
// writer over the facade's record iterator, so memory stays bounded
// however large -scale and -devices-scale grow the population. -shards
// changes the population sample (each shard draws an independent seeded
// stream); -workers only changes wall-clock time. The serialization
// format never changes the record stream itself — a binary export decodes
// to exactly the rows the CSV export carries (PERFORMANCE.md documents
// that contract). ^C cancels the export cleanly at shard granularity.
//
// Rows are emitted in deterministic shard/generation order, not sorted by
// first-packet time as the materializing GenerateDataset export is — a
// bounded-memory stream cannot globally sort. Sort post-hoc when the probe
// export order matters.
//
// -profile replaces the vantage point's calibrated client capabilities
// (the Version the paper observed there) with a named capability profile —
// the per-dataset entry point to the what-if engine. Omitting it keeps the
// historical behaviour bit for bit.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"insidedropbox"
	"insidedropbox/internal/analysis"
	"insidedropbox/internal/backend"
	"insidedropbox/internal/cli"
	"insidedropbox/internal/telemetry"
)

func main() {
	// `dropsim campaign plan|run|merge` is the multi-process campaign
	// fan-out flow; everything else is the classic flag-driven export.
	if len(os.Args) > 1 && os.Args[1] == "campaign" {
		campaignMain(os.Args[2:])
		return
	}
	vp := flag.String("vp", "home1", "vantage point: "+strings.Join(cli.VantageNames(), ", "))
	scale := flag.Float64("scale", 0.05, "population scale versus the paper")
	seed := flag.Int64("seed", 42, "random seed")
	shards := flag.Int("shards", 1, "deterministic population shards (part of the result)")
	workers := flag.Int("workers", 0, "concurrent shard workers (0 = GOMAXPROCS; never changes results)")
	devScale := flag.Float64("devices-scale", 1, "population multiplier on top of -scale")
	profile := flag.String("profile", "", "capability profile overriding the VP's client version: "+
		strings.Join(insidedropbox.CapabilityNames(), "|"))
	format := flag.String("format", "csv", "trace format: csv (public-release compatible), binary (columnar, ~3.5x smaller), or binary-flate (compressed archival with seek index)")
	serWorkers := flag.Int("serialize-workers", 0, "block-encoding workers for binary formats (0 = GOMAXPROCS; never changes output bytes)")
	backendPreset := flag.String("backend", "", "after the export, replay the stream against the server "+
		"capacity model under this preset: "+strings.Join(insidedropbox.BackendPresets(), "|"))
	scenarioPath := flag.String("scenario", "", "declarative scenario spec file; its base section overrides -vp/-scale/-seed/-shards/-devices-scale/-profile")
	summary := flag.Bool("summary", false, "print streaming aggregates instead of trace records")
	out := flag.String("o", "", "output file (default stdout)")
	manifest := flag.String("manifest", "", "write a run manifest (stream hash, shard timings, telemetry snapshot) to this file")
	checkpoint := flag.String("checkpoint", "", "campaign directory for per-shard checkpoint/resume (enables the multi-core campaign runner)")
	resume := flag.Bool("resume", false, "continue a checkpointed campaign from where it stopped (requires -checkpoint)")
	jobs := flag.Int("jobs", 0, "concurrent shard-range jobs for -checkpoint runs (0 = GOMAXPROCS; never changes output bytes)")
	prof := cli.BindProfile(flag.CommandLine)
	flag.Parse()

	// The checkpointed campaign path owns serialization (parts + merge),
	// so the stream-tee features cannot combine with it.
	if *checkpoint != "" {
		for _, bad := range []struct {
			set  bool
			flag string
		}{
			{*summary, "-summary"},
			{*backendPreset != "", "-backend"},
			{*scenarioPath != "", "-scenario"},
		} {
			if bad.set {
				fmt.Fprintf(os.Stderr, "-checkpoint cannot combine with %s: the campaign runner exports from checkpointed parts, not a live stream\n", bad.flag)
				os.Exit(2)
			}
		}
	} else if *resume {
		fmt.Fprintln(os.Stderr, "-resume requires -checkpoint")
		os.Exit(2)
	}

	if *format != "csv" && *format != "binary" && *format != "binary-flate" {
		fmt.Fprintf(os.Stderr, "unknown format %q (valid: csv, binary, binary-flate)\n", *format)
		os.Exit(2)
	}
	if *backendPreset != "" {
		valid := false
		for _, p := range insidedropbox.BackendPresets() {
			valid = valid || p == *backendPreset
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "unknown backend preset %q (valid: %s)\n",
				*backendPreset, strings.Join(insidedropbox.BackendPresets(), ", "))
			os.Exit(2)
		}
		if *summary {
			fmt.Fprintln(os.Stderr, "-backend needs the record stream; it cannot combine with -summary")
			os.Exit(2)
		}
	}

	cfg, err := cli.VantagePoint(*vp, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *profile != "" {
		p, ok := insidedropbox.CapabilityByName(*profile)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown capability profile %q (valid: %s)\n",
				*profile, strings.Join(insidedropbox.CapabilityNames(), ", "))
			os.Exit(2)
		}
		cfg.Caps = &p
	}
	fc := insidedropbox.FleetConfig{Shards: *shards, Workers: *workers, DevicesScale: *devScale}
	runSeed := *seed

	// A scenario spec replaces the flag-assembled population wholesale:
	// compilation is a pure function of (spec, seed), so the exported
	// stream is reproducible from the committed file plus the seed alone.
	var comp *insidedropbox.CompiledScenario
	if *scenarioPath != "" {
		sp, err := insidedropbox.LoadScenario(*scenarioPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		comp, err = insidedropbox.CompileScenario(sp, runSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg = comp.VP
		runSeed = comp.Seed
		fc.Shards = comp.Fleet.Shards
		if comp.Fleet.DevicesScale > 0 {
			fc.DevicesScale = comp.Fleet.DevicesScale
		}
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	if *checkpoint != "" {
		ctx, stop := cli.SignalContext()
		defer stop()
		spec := campaignSpec(*vp, *scale, *seed, *shards, *devScale, *profile, *format)
		runCheckpointed(ctx, spec, *checkpoint, *out, *jobs, *resume, *manifest)
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	// The manifest recorder hashes the exact serialized bytes (tee'd off
	// the output stream) and logs per-shard timings via the fleet
	// observer — both observation-only, so -manifest never changes the
	// exported stream.
	var rec *manifestRecorder
	if *manifest != "" {
		spec := map[string]string{
			"vp":            cfg.Name,
			"scale":         strconv.FormatFloat(*scale, 'g', -1, 64),
			"shards":        strconv.Itoa(fc.Shards),
			"workers":       strconv.Itoa(*workers),
			"devices_scale": strconv.FormatFloat(fc.DevicesScale, 'g', -1, 64),
			"format":        *format,
			"profile":       *profile,
			"backend":       *backendPreset,
		}
		if comp != nil {
			spec["scenario"] = comp.Spec.Name
		}
		rec = newManifestRecorder(runSeed, spec)
		w = io.MultiWriter(w, rec.hash)
		fc.Observer = rec.observe
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	if *summary {
		printSummary(ctx, cfg, runSeed, fc, w)
		return
	}

	// The backend collector tees off the record stream before
	// serialization — observation only, so -backend never changes the
	// exported bytes (the manifest stream hash stays preset-independent).
	var col *backend.Collector
	var tee func(*insidedropbox.FlowRecord)
	if *backendPreset != "" || (comp != nil && comp.Backend != nil) {
		col = &backend.Collector{}
		tee = col.Consume
	}

	stats, volume, err := streamTraces(ctx, cfg, runSeed, fc, w, *format, *serWorkers, tee)
	if err != nil {
		cli.Exit(ctx, "writing traces", err)
	}
	if col != nil {
		if err := simulateBackend(ctx, *backendPreset, comp, col.Requests); err != nil {
			cli.Exit(ctx, "backend simulation", err)
		}
	}
	if rec != nil {
		// Saved after the backend replay, so the telemetry snapshot in the
		// manifest carries the backend.* counters and gauges.
		if err := rec.save(*manifest); err != nil {
			cli.Exit(ctx, "writing manifest", err)
		}
	}
	for _, v := range stats.BackgroundByDay {
		volume += v
	}
	fmt.Fprintf(os.Stderr, "%s: %d flow records, %d Dropbox devices, %.2f GB total\n",
		stats.Cfg.Name, stats.Records, stats.Devices, volume/1e9)
}

// manifestRecorder accumulates the -manifest inputs: the FNV-1a hash of
// the serialized stream and the per-shard generation timings (fleet
// workers call observe concurrently).
type manifestRecorder struct {
	hash hash.Hash64
	m    *insidedropbox.RunManifest

	mu sync.Mutex
}

func newManifestRecorder(seed int64, spec map[string]string) *manifestRecorder {
	m := telemetry.NewManifest(seed)
	m.Spec = spec
	return &manifestRecorder{hash: fnv.New64a(), m: m}
}

func (r *manifestRecorder) observe(ev insidedropbox.ShardEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m.Shards = append(r.m.Shards, telemetry.ShardTiming{
		VP:      ev.VP,
		Shard:   ev.Shard,
		Shards:  ev.Shards,
		Records: int64(ev.Records),
		Seconds: ev.Elapsed.Seconds(),
	})
}

func (r *manifestRecorder) save(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m.StreamHash = fmt.Sprintf("%016x", r.hash.Sum64())
	telemetry.SetInfo("stream_hash", r.m.StreamHash)
	return r.m.Save(path)
}

// printSummary runs the bounded-memory aggregation path and renders the
// streaming metrics.
func printSummary(ctx context.Context, cfg insidedropbox.VPConfig, seed int64,
	fc insidedropbox.FleetConfig, w io.Writer) {

	sum, stats, err := insidedropbox.Summarize(ctx, cfg, seed, fc)
	if err != nil {
		cli.Exit(ctx, "summarizing", err)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s: %d IPs, %d shards\n", stats.Cfg.Name, stats.Cfg.TotalIPs, stats.Shards)
	m := sum.Metrics()
	for _, k := range analysis.SortedKeys(m) {
		fmt.Fprintf(bw, "  %-18s %.6g\n", k, m[k])
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "writing summary:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s: %d flow records aggregated, %d Dropbox devices (ground truth)\n",
		stats.Cfg.Name, stats.Records, stats.Devices)
}

// streamTraces pipes records from the generator shards straight into the
// chosen trace writer through a WriterSink, without materializing the
// dataset. The sink latches the first write error and stops the stream; a
// cancelled context stops it at shard granularity.
func streamTraces(ctx context.Context, cfg insidedropbox.VPConfig, seed int64,
	fc insidedropbox.FleetConfig, w io.Writer, format string, serWorkers int,
	tee func(*insidedropbox.FlowRecord)) (insidedropbox.FleetStats, float64, error) {

	if serWorkers < 1 {
		serWorkers = runtime.GOMAXPROCS(0)
	}
	var bw *bufio.Writer
	sink := &insidedropbox.WriterSink{}
	switch format {
	case "binary":
		bw = bufio.NewWriterSize(w, 1<<16)
		if serWorkers > 1 {
			sink.W = insidedropbox.NewParallelBinaryTraceWriter(bw, serWorkers)
		} else {
			sink.W = insidedropbox.NewBinaryTraceWriter(bw)
		}
	case "binary-flate":
		bw = bufio.NewWriterSize(w, 1<<16)
		sink.W = insidedropbox.NewFlateTraceWriter(bw, serWorkers)
	default:
		sink.W = insidedropbox.NewTraceWriter(w)
	}
	var volume float64
	stats, err := insidedropbox.StreamRecords(ctx, cfg, seed, fc, func(r *insidedropbox.FlowRecord) bool {
		volume += float64(r.BytesUp + r.BytesDown)
		if tee != nil {
			tee(r)
		}
		sink.Consume(r)
		return sink.Err == nil
	})
	if err == nil {
		err = sink.Err
	}
	if err == nil {
		err = sink.W.Flush()
	}
	if bw != nil && err == nil {
		err = bw.Flush()
	}
	return stats, volume, err
}

// simulateBackend replays the collected arrivals and prints the load
// response to stderr: overall counts and delay quantiles, then per-node
// utilization. A compiled scenario contributes its backend section —
// preset, timeline events, surges and report windows — with an explicit
// -backend preset overriding just the sizing.
func simulateBackend(ctx context.Context, preset string, comp *insidedropbox.CompiledScenario, reqs []backend.Request) error {
	backend.SortRequests(reqs)
	load := reqs
	var timeline []backend.TimelineEvent
	var windows []backend.Window
	if comp != nil && comp.Backend != nil {
		if preset == "" {
			preset = comp.Backend.Preset
		}
		timeline = comp.Backend.Timeline
		windows = comp.Backend.Windows
		// Capacity is provisioned against the base load below; surges
		// amplify what the deployment actually faces.
		load = comp.Backend.ApplySurges(reqs)
	}
	cfg, err := backend.PresetConfig(preset, reqs)
	if err != nil {
		return err
	}
	cfg.Timeline = timeline
	cfg.Windows = windows
	rep, err := backend.Simulate(ctx, cfg, load)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "backend %q: %d served / %d dropped / %d shed of %d requests; "+
		"queueing delay mean %v p95 %v p99 %v\n",
		preset, rep.Served, rep.Dropped, rep.Shed, rep.Requests,
		rep.MeanDelay(), rep.DelayQuantile(0.95), rep.DelayQuantile(0.99))
	for _, wr := range rep.Windows {
		fmt.Fprintf(os.Stderr, "  window %-12s served %-8d dropped %-6d p95 delay %v\n",
			wr.Name, wr.Served, wr.Dropped, time.Duration(wr.Delay.Quantile(0.95)))
	}
	for _, n := range rep.Nodes {
		util := "unbounded"
		if n.Concurrency > 0 {
			util = fmt.Sprintf("%.1f%% of %d slots", 100*n.Utilization, n.Concurrency)
		}
		fmt.Fprintf(os.Stderr, "  %-12s served %-8d dropped %-6d queue max %-6d util %s\n",
			n.Name, n.Served, n.Dropped+n.Shed, n.QueueMax, util)
	}
	return nil
}
