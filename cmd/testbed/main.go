// Command testbed runs the decrypting-proxy-equivalent protocol dissection
// of Sec. 2.2: a real client session against the full simulated service,
// with the control/storage message sequence (Fig. 1) and annotated packet
// traces of the storage flows (Fig. 19).
//
// Usage:
//
//	testbed [-seed N] [-fig19]
package main

import (
	"flag"
	"fmt"

	"insidedropbox"
)

func main() {
	seed := flag.Int64("seed", 7, "random seed")
	onlyFig19 := flag.Bool("fig19", false, "print only the packet traces")
	flag.Parse()

	fig1, fig19 := insidedropbox.Testbed(*seed)
	if !*onlyFig19 {
		fmt.Println(fig1.Title)
		fmt.Println()
		fmt.Println(fig1.Text)
	}
	fmt.Println(fig19.Title)
	fmt.Println()
	fmt.Println(fig19.Text)
}
