// Command testbed runs the decrypting-proxy-equivalent protocol dissection
// of Sec. 2.2: a real client session against the full simulated service,
// with the control/storage message sequence (Fig. 1) and annotated packet
// traces of the storage flows (Fig. 19), selected from the experiment
// registry.
//
// Usage:
//
//	testbed [-seed N] [-fig19]
package main

import (
	"flag"
	"fmt"

	"insidedropbox"
	"insidedropbox/internal/cli"
)

func main() {
	seed := flag.Int64("seed", 7, "random seed")
	onlyFig19 := flag.Bool("fig19", false, "print only the packet traces")
	flag.Parse()

	selection := []string{"figure1", "figure19"}
	if *onlyFig19 {
		selection = []string{"figure19"}
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	results, err := insidedropbox.Run(ctx, insidedropbox.Spec{Seed: *seed},
		insidedropbox.WithExperiments(selection...))
	if err != nil {
		cli.Exit(ctx, "testbed", err)
	}
	for _, r := range results {
		fmt.Println(r.Title)
		fmt.Println()
		fmt.Println(r.Text)
	}
}
