// Command experiments regenerates the paper's tables and figures through
// the unified experiment API and writes them to a results directory.
//
// Usage:
//
//	experiments [-seed N] [-out DIR] [-quick] [-skip-packet]
//	            [-only IDS] [-shards N] [-workers N]
//	            [-fleet-scale F] [-whatif] [-profiles LIST] [-list]
//	            [-pprof ADDR] [-cpuprofile FILE] [-memprofile FILE]
//	            [-telemetry-interval DUR]
//	            [-validate-manifest FILE] [-print-stream-hash FILE]
//	            [-scenario FILE] [-validate-scenario FILE]
//
// Every run with -out writes a machine-readable manifest.json next to
// the rendered results (seed, spec, environment, per-experiment and
// per-shard timings, telemetry snapshot). -validate-manifest and
// -print-stream-hash are the CI consumers of that file: schema
// validation and the telemetry-on/off golden comparison.
//
// -only selects a catalogue subset by ID or glob ("table3", "figure*",
// "table4,figure9"); without it the full default catalogue runs. -shards
// routes campaign generation through the sharded fleet engine (changing
// the population sample but not its size); -fleet-scale > 0 adds the
// streaming fleet lab at that population multiplier; -whatif adds the
// capability what-if lab (Campus 1 under -profiles, compared against the
// first profile); -scenario FILE adds the scenario/* experiments under a
// declarative spec (cohort mixes, backend timelines — see scenarios/).
// -validate-scenario strictly validates a spec file and exits, the CI
// gate for the committed catalogue. ^C cancels cleanly at fleet-shard
// granularity.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"insidedropbox"
	"insidedropbox/internal/cli"
)

func main() {
	flags := cli.BindSpec(flag.CommandLine)
	prof := cli.BindProfile(flag.CommandLine)
	list := flag.Bool("list", false, "print the experiment catalogue and exit")
	validateManifest := flag.String("validate-manifest", "", "validate a manifest.json against the current schema and exit")
	printStreamHash := flag.String("print-stream-hash", "", "print the stream hash recorded in a manifest.json and exit")
	validateScenario := flag.String("validate-scenario", "", "strictly validate a scenario spec file and exit")
	flag.Parse()

	if *validateScenario != "" {
		sp, err := insidedropbox.LoadScenario(*validateScenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %s\n", *validateScenario, sp.Summary())
		return
	}

	if *validateManifest != "" {
		m, err := insidedropbox.LoadRunManifest(*validateManifest)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s: schema %d, seed %d, %d experiments, %d shards, %d counters\n",
			*validateManifest, m.Schema, m.Seed, len(m.Experiments), len(m.Shards), len(m.Telemetry.Counters))
		return
	}
	if *printStreamHash != "" {
		m, err := insidedropbox.LoadRunManifest(*printStreamHash)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if m.StreamHash == "" {
			fmt.Fprintf(os.Stderr, "%s: no stream hash recorded\n", *printStreamHash)
			os.Exit(1)
		}
		fmt.Println(m.StreamHash)
		return
	}

	if *list {
		for _, e := range insidedropbox.Experiments() {
			kind := ""
			switch {
			case e.Needs.Packet:
				kind = "  [packet]"
			case e.Needs.OptIn:
				kind = "  [opt-in]"
			}
			fmt.Printf("%-10s %s%s\n", e.ID, e.Title, kind)
		}
		return
	}

	spec, err := flags.Spec()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec.Progress = cli.Progress(os.Stdout)

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	ctx, stop := cli.SignalContext()
	defer stop()

	start := time.Now()
	results, err := insidedropbox.Run(ctx, spec)
	if err != nil {
		cli.Exit(ctx, fmt.Sprintf("run (%d experiments completed)", len(results)), err)
	}
	fmt.Printf("wrote %d experiments to %s/ in %v\n",
		len(results), spec.ResultsDir, time.Since(start).Round(time.Millisecond))
	for _, r := range results {
		fmt.Printf("  %-10s %s\n", r.ID, r.Title)
	}
}
