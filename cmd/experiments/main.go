// Command experiments regenerates every table and figure of the paper and
// writes them to a results directory.
//
// Usage:
//
//	experiments [-seed N] [-out DIR] [-quick] [-skip-packet]
//	            [-shards N] [-fleet-scale F]
//	            [-whatif] [-profiles LIST]
//
// -shards routes campaign generation through the sharded fleet engine
// (changing the population sample but not its size); -fleet-scale > 0 adds
// a streaming fleet campaign at that population multiplier, aggregated
// with bounded memory. -whatif adds a capability what-if campaign: the
// Campus 1 population replayed under every profile in -profiles (default:
// the full preset catalogue), compared against the first profile.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"insidedropbox"
)

func main() {
	seed := flag.Int64("seed", 2012, "campaign random seed")
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "small populations and packet labs")
	skipPacket := flag.Bool("skip-packet", false, "skip the packet-level labs (Figs. 1, 9, 10, 19)")
	shards := flag.Int("shards", 1, "population shards per vantage point (1 = historical datasets)")
	fleetScale := flag.Float64("fleet-scale", 0, "also run a streaming fleet campaign at this device multiplier (0 = off)")
	whatif := flag.Bool("whatif", false, "run the capability what-if campaign (Campus 1 under -profiles)")
	profiles := flag.String("profiles", strings.Join(insidedropbox.CapabilityNames(), ","),
		"comma-separated capability profiles for -whatif (first = baseline)")
	flag.Parse()

	start := time.Now()
	scale := insidedropbox.DefaultScale()
	if *quick {
		scale = insidedropbox.SmallScale()
	}
	fmt.Printf("generating 42-day campaign (seed %d, %d shards/VP)...\n", *seed, *shards)
	camp := insidedropbox.RunShardedCampaign(*seed, scale, insidedropbox.FleetConfig{Shards: *shards})
	for _, ds := range camp.Datasets {
		fmt.Printf("  %-16s %6d IPs  %8d flows  %7.2f GB (scale %.2f)\n",
			ds.Cfg.Name, ds.Cfg.TotalIPs, len(ds.Records), ds.TotalVolume()/1e9, ds.Cfg.Scale)
	}

	results := insidedropbox.AllExperiments(camp)

	fmt.Println("running Table 4 (bundling before/after)...")
	t4scale := 1.0
	if *quick {
		t4scale = 0.4
	}
	results = append(results, insidedropbox.Table4(*seed, t4scale))

	if *whatif {
		profs, err := insidedropbox.ParseProfiles(*profiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("running capability what-if campaign (%d profiles)...\n", len(profs))
		rep := insidedropbox.RunWhatIf(insidedropbox.WhatIfConfig{
			Seed: *seed, VP: insidedropbox.Campus1(t4scale),
			Fleet: insidedropbox.FleetConfig{Shards: *shards}, Profiles: profs,
		})
		results = append(results, rep.Result())
	}

	if *fleetScale > 0 {
		fmt.Printf("running streaming fleet campaign (%.4gx devices)...\n", *fleetScale)
		rep := insidedropbox.RunFleetCampaign(*seed, scale,
			insidedropbox.FleetConfig{Shards: *shards, DevicesScale: *fleetScale})
		results = append(results, rep.Result())
	}

	if !*skipPacket {
		fmt.Println("running packet-level performance labs (Figs. 9, 10)...")
		fig9, fig10 := insidedropbox.PerformanceLab(*quick)
		results = append(results, fig9, fig10)

		fmt.Println("running protocol testbed (Figs. 1, 19)...")
		fig1, fig19 := insidedropbox.Testbed(*seed)
		results = append(results, fig1, fig19)
	}

	if err := insidedropbox.WriteResults(*out, results); err != nil {
		fmt.Fprintln(os.Stderr, "writing results:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d experiments to %s/ in %v\n", len(results), *out, time.Since(start).Round(time.Millisecond))
	for _, r := range results {
		fmt.Printf("  %-10s %s\n", r.ID, r.Title)
	}
}
