// Command experiments regenerates the paper's tables and figures through
// the unified experiment API and writes them to a results directory.
//
// Usage:
//
//	experiments [-seed N] [-out DIR] [-quick] [-skip-packet]
//	            [-only IDS] [-shards N] [-workers N]
//	            [-fleet-scale F] [-whatif] [-profiles LIST] [-list]
//
// -only selects a catalogue subset by ID or glob ("table3", "figure*",
// "table4,figure9"); without it the full default catalogue runs. -shards
// routes campaign generation through the sharded fleet engine (changing
// the population sample but not its size); -fleet-scale > 0 adds the
// streaming fleet lab at that population multiplier; -whatif adds the
// capability what-if lab (Campus 1 under -profiles, compared against the
// first profile). ^C cancels cleanly at fleet-shard granularity.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"insidedropbox"
	"insidedropbox/internal/cli"
)

func main() {
	flags := cli.BindSpec(flag.CommandLine)
	list := flag.Bool("list", false, "print the experiment catalogue and exit")
	flag.Parse()

	if *list {
		for _, e := range insidedropbox.Experiments() {
			kind := ""
			switch {
			case e.Needs.Packet:
				kind = "  [packet]"
			case e.Needs.OptIn:
				kind = "  [opt-in]"
			}
			fmt.Printf("%-10s %s%s\n", e.ID, e.Title, kind)
		}
		return
	}

	spec, err := flags.Spec()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec.Progress = cli.Progress(os.Stdout)

	ctx, stop := cli.SignalContext()
	defer stop()

	start := time.Now()
	results, err := insidedropbox.Run(ctx, spec)
	if err != nil {
		cli.Exit(ctx, fmt.Sprintf("run (%d experiments completed)", len(results)), err)
	}
	fmt.Printf("wrote %d experiments to %s/ in %v\n",
		len(results), spec.ResultsDir, time.Since(start).Round(time.Millisecond))
	for _, r := range results {
		fmt.Printf("  %-10s %s\n", r.ID, r.Title)
	}
}
