// Command bench runs the repo's tracked performance harness: the pinned
// generation / aggregation / serialization workload catalogue of
// internal/bench, written as a machine-readable BENCH_<rev>.json so every
// PR records a perf trajectory point and can be gated against the last
// one. See PERFORMANCE.md for the scenario catalogue and the workflow.
//
// Usage:
//
//	bench [-quick] [-rev LABEL] [-o FILE] [-scenarios SUBSTR]
//	      [-compare FILE|auto] [-max-allocs-ratio F]
//	      [-pprof ADDR] [-cpuprofile FILE] [-memprofile FILE]
//	      [-telemetry-interval DUR]
//
// Without -o the report lands in BENCH_<rev>.json in the current
// directory; -rev defaults to the git short revision of the working tree.
// -compare loads a baseline report ("auto" picks the most recently
// recorded BENCH_*.json in the current directory), prints a one-line
// delta summary per scenario, and exits non-zero if any scenario's
// allocs-per-record regressed beyond -max-allocs-ratio — the
// timing-independent gate CI runs at -quick scale. The profile flags
// (shared with cmd/experiments and cmd/dropsim) capture CPU/heap
// profiles or periodic telemetry snapshots of a harness run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"insidedropbox/internal/bench"
	"insidedropbox/internal/cli"
)

func main() {
	quick := flag.Bool("quick", false, "CI-smoke scales (seconds, not minutes)")
	rev := flag.String("rev", "", "revision label for the report (default: git short rev)")
	out := flag.String("o", "", "output file (default BENCH_<rev>.json)")
	scenarios := flag.String("scenarios", "", "comma-separated scenario substrings or globs (e.g. serialize/*,fleet)")
	compare := flag.String("compare", "", "baseline BENCH_*.json to gate against, or 'auto' for the latest in the current directory")
	maxRatio := flag.Float64("max-allocs-ratio", 2.0, "fail -compare when allocs/record exceeds baseline by this factor")
	list := flag.Bool("list", false, "print the scenario catalogue and exit")
	prof := cli.BindProfile(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, n := range bench.ScenarioNames() {
			fmt.Println(n)
		}
		return
	}

	if *rev == "" {
		*rev = gitRev()
	}
	opts := bench.Options{Quick: *quick, Rev: *rev, Log: os.Stderr}
	if *scenarios != "" {
		opts.Filter = cli.Matcher(*scenarios)
	}

	// Resolve and load the comparison baseline before anything is written,
	// so the report this run produces can never be selected (or survive
	// being overwritten) as its own baseline.
	var baseline *bench.Report
	if *compare != "" {
		basePath := *compare
		if basePath == "auto" {
			latest, err := bench.FindLatest(".", *quick)
			if err != nil || latest == "" {
				fmt.Fprintln(os.Stderr, "bench: no baseline BENCH_*.json found for -compare auto")
				os.Exit(2)
			}
			basePath = latest
		}
		var err error
		baseline, err = bench.Load(basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	ctx, stop := cli.SignalContext()
	defer stop()
	rep := bench.Run(ctx, opts)
	if ctx.Err() != nil {
		cli.Exit(ctx, "bench (partial report discarded)", ctx.Err())
	}
	if len(rep.Scenarios) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no scenarios matched")
		os.Exit(2)
	}

	path := *out
	if path == "" {
		path = bench.FileName(*rev)
	}
	if err := rep.Save(path); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (peak RSS %.1f MB)\n",
		path, float64(rep.PeakRSSBytes)/1e6)

	if baseline == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "bench: deltas vs baseline %s:\n", baseline.Rev)
	for _, line := range bench.DeltaSummary(rep, baseline) {
		fmt.Fprintln(os.Stderr, "  "+line)
	}
	violations, notes := bench.Compare(rep, baseline, *maxRatio)
	for _, n := range notes {
		fmt.Fprintln(os.Stderr, "bench:", n)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "bench: REGRESSION:", v)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: allocs/record within %.1fx of baseline %s\n",
		*maxRatio, baseline.Rev)
}

// gitRev resolves the working tree's short revision by reading .git
// directly (no git binary dependency); "dev" when unresolvable.
func gitRev() string {
	head, err := os.ReadFile(".git/HEAD")
	if err != nil {
		return "dev"
	}
	ref := strings.TrimSpace(string(head))
	if sha, ok := strings.CutPrefix(ref, "ref: "); ok {
		if data, err := os.ReadFile(filepath.Join(".git", filepath.FromSlash(sha))); err == nil {
			ref = strings.TrimSpace(string(data))
		} else if packed, err := os.ReadFile(".git/packed-refs"); err == nil {
			ref = findPackedRef(string(packed), sha)
		} else {
			return "dev"
		}
	}
	if len(ref) < 12 || strings.ContainsAny(ref, " \t/") {
		return "dev"
	}
	return ref[:12]
}

// findPackedRef scans a packed-refs file for the named ref.
func findPackedRef(packed, name string) string {
	for _, line := range strings.Split(packed, "\n") {
		if strings.HasSuffix(line, " "+name) {
			return strings.TrimSpace(strings.TrimSuffix(line, name))
		}
	}
	return ""
}
