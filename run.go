package insidedropbox

import (
	"context"
	"fmt"
	"io"
	"iter"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"insidedropbox/internal/campaign"
	"insidedropbox/internal/experiments"
	"insidedropbox/internal/fleet"
	"insidedropbox/internal/telemetry"
)

// Spec is the one description of an experiment run: seed, population
// scale, fleet sizing, experiment selection and the opt-in lab
// configuration. The zero value is runnable — it selects the default
// catalogue (every table and figure) at DefaultScale with one shard per
// vantage point. Functional options (WithShards, WithProfiles, ...) layer
// adjustments on top of a Spec literal; both styles set the same fields.
type Spec struct {
	// Seed is the campaign seed every vantage point and lab derives from.
	Seed int64

	// Scale is the per-vantage-point population scaling. The zero value
	// resolves to DefaultScale (SmallScale when Quick is set).
	Scale ScaleConfig

	// Fleet sizes the sharded engine used for campaign generation:
	// Shards changes the drawn population sample (part of the experiment
	// definition), Workers only wall-clock time.
	Fleet FleetConfig

	// Experiments selects the catalogue subset to run, as glob-style
	// patterns over experiment IDs ("table4", "figure*", "figure1?").
	// Empty means the default selection: every non-opt-in experiment,
	// plus "whatif" when Profiles is set and "fleet" when FleetScale > 0.
	Experiments []string

	// Quick shrinks the packet labs and is the cue to default Scale to
	// SmallScale — the -quick CLI behaviour.
	Quick bool

	// SkipPacket drops the packet-level experiments (figures 1, 9, 10,
	// 19) from the selection.
	SkipPacket bool

	// Profiles configures the "whatif" lab and opts it into the default
	// selection. Nil leaves the lab opt-in (selected explicitly, it runs
	// the full preset catalogue).
	Profiles []CapabilityProfile

	// FleetScale configures the "fleet" lab's device multiplier and opts
	// it into the default selection when > 0.
	FleetScale float64

	// Backend names the capacity preset of the "backend/*" server
	// simulation lab (see BackendPresets) and opts the lab into the
	// default selection when set. Empty leaves the lab opt-in; selected
	// explicitly, it runs under the provisioned preset.
	Backend string

	// Scenario is a loaded declarative scenario spec (LoadScenario); it
	// configures the "scenario/*" experiments and opts them into the
	// default selection. The spec's base section wins over Seed and
	// Fleet.Shards for the scenario stream; Workers still only affects
	// wall-clock time. Nil leaves the experiments opt-in.
	Scenario *ScenarioSpec

	// Checkpoint, when non-empty, is a file that receives each
	// experiment's serialized result the moment it completes, in a
	// schema-versioned, CRC-guarded envelope keyed by the run's spec
	// fingerprint. A later Run with the same spec, the same Checkpoint
	// path and Resume set loads the recorded results instead of
	// recomputing them — an interrupted campaign restarts at the first
	// unfinished experiment. Running against an existing checkpoint
	// without Resume is an error (never a silent partial resume).
	Checkpoint string

	// Resume allows Checkpoint to load previously recorded results. The
	// checkpoint must belong to an identical spec (worker counts aside —
	// they never change results); anything else fails loudly.
	Resume bool

	// ResultsDir, when non-empty, receives the rendered results via
	// WriteResults after the run completes, plus a schema-versioned
	// manifest.json (telemetry.Manifest): the run's provenance record —
	// environment, per-experiment and per-shard timings, and a full
	// telemetry counter snapshot. The manifest is written even when the
	// run fails or completes zero experiments.
	ResultsDir string

	// Progress, when non-nil, observes the run. Experiment events mark
	// each experiment's start and completion (every started experiment
	// gets a terminal event, failed ones with Err set); shard events
	// (ShardEvent() true) report generation progress inside the running
	// experiment with live throughput and an ETA. Progress is called
	// from the run's goroutines but never concurrently.
	Progress func(Progress)
}

// Progress is one run observation event. Two kinds of event flow through
// the same callback: experiment events (ShardEvent() false) and, between
// an experiment's start and terminal events, shard events reporting the
// generation underneath it.
type Progress struct {
	// ID and Title identify the experiment.
	ID, Title string
	// Index is the experiment's 1-based position of Total selected.
	Index, Total int
	// Done is false when the experiment starts, true when it completes —
	// successfully or not. A run emits exactly one terminal event per
	// started experiment, so observers never hang waiting for experiment
	// N of M.
	Done bool
	// Err is the experiment's failure, set only on the terminal event of
	// a failed experiment.
	Err error
	// Elapsed is the experiment's wall time on terminal events, and the
	// completed shard's generation time on shard events.
	Elapsed time.Duration

	// Shard-granularity fields, set only on shard events (Shards > 0):
	// one event per completed generation shard under the experiment the
	// identity fields above name.
	VP            string        // vantage point being generated
	Shard, Shards int           // completed shard's index of Shards total
	ShardsDone    int           // this VP's shards completed so far
	Records       int64         // this VP's records generated so far
	RecordsPerSec float64       // this VP's live generation throughput
	ETA           time.Duration // estimated remaining generation time for this VP
}

// ShardEvent reports whether p is a shard-granularity event.
func (p Progress) ShardEvent() bool { return p.Shards > 0 }

// Option adjusts a Spec. Options are applied in order after the Spec
// literal, so later options win.
type Option func(*Spec)

// WithSeed sets the campaign seed.
func WithSeed(seed int64) Option { return func(s *Spec) { s.Seed = seed } }

// WithScale sets the per-vantage-point population scaling.
func WithScale(sc ScaleConfig) Option { return func(s *Spec) { s.Scale = sc } }

// WithShards routes campaign generation through that many deterministic
// population shards per vantage point (1 reproduces the historical
// datasets; the shard count is part of the experiment definition).
func WithShards(n int) Option { return func(s *Spec) { s.Fleet.Shards = n } }

// WithWorkers bounds the generation worker pool (0 = GOMAXPROCS; worker
// counts never change results, only wall-clock time).
func WithWorkers(n int) Option { return func(s *Spec) { s.Fleet.Workers = n } }

// WithExperiments selects the experiments to run, as glob-style patterns
// over catalogue IDs.
func WithExperiments(patterns ...string) Option {
	return func(s *Spec) { s.Experiments = append(s.Experiments, patterns...) }
}

// WithProfiles configures the capability what-if lab and opts it into the
// default selection.
func WithProfiles(profiles ...CapabilityProfile) Option {
	return func(s *Spec) { s.Profiles = append(s.Profiles, profiles...) }
}

// WithFleetScale configures the streaming fleet lab's device multiplier
// and opts it into the default selection.
func WithFleetScale(scale float64) Option { return func(s *Spec) { s.FleetScale = scale } }

// WithBackend configures the backend capacity lab's preset and opts the
// backend/* experiments into the default selection.
func WithBackend(preset string) Option { return func(s *Spec) { s.Backend = preset } }

// WithScenario attaches a loaded scenario spec and opts the scenario/*
// experiments into the default selection.
func WithScenario(sp *ScenarioSpec) Option { return func(s *Spec) { s.Scenario = sp } }

// WithQuick selects small populations and quick packet labs.
func WithQuick() Option { return func(s *Spec) { s.Quick = true } }

// WithSkipPacket drops the packet-level experiments from the selection.
func WithSkipPacket() Option { return func(s *Spec) { s.SkipPacket = true } }

// WithProgress installs a run observer.
func WithProgress(fn func(Progress)) Option { return func(s *Spec) { s.Progress = fn } }

// WithResultsDir writes rendered results to dir after the run.
func WithResultsDir(dir string) Option { return func(s *Spec) { s.ResultsDir = dir } }

// WithCheckpoint records each experiment's result to path as it
// completes, enabling WithResume to restart an interrupted run at the
// first unfinished experiment.
func WithCheckpoint(path string) Option { return func(s *Spec) { s.Checkpoint = path } }

// WithResume lets the run load results already recorded in its
// checkpoint instead of recomputing them.
func WithResume() Option { return func(s *Spec) { s.Resume = true } }

// Experiments returns the full experiment catalogue — every table, figure
// and lab, each with a unique ID — in presentation order.
func Experiments() []Experiment { return experiments.Experiments() }

// ExperimentByID resolves one catalogue entry by its exact ID.
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// SelectExperiments resolves glob-style patterns against the catalogue
// (no patterns = the default selection). A pattern matching nothing is an
// error.
func SelectExperiments(patterns ...string) ([]Experiment, error) {
	return experiments.Select(patterns...)
}

// resolve fills a Spec's defaulted fields and computes its selection.
func (s Spec) resolve() (Spec, []Experiment, error) {
	if s.Scale == (ScaleConfig{}) {
		if s.Quick {
			s.Scale = SmallScale()
		} else {
			s.Scale = DefaultScale()
		}
	}
	patterns := s.Experiments
	if len(patterns) == 0 {
		// The default selection, with the opt-in labs joining when the
		// Spec configures them — the historical CLI contract.
		if len(s.Profiles) > 0 {
			patterns = append(patterns, "whatif")
		}
		if s.FleetScale > 0 {
			patterns = append(patterns, "fleet")
		}
		if s.Backend != "" {
			patterns = append(patterns, "backend/*")
		}
		if s.Scenario != nil {
			patterns = append(patterns, "scenario/*")
		}
		def, err := experiments.Select()
		if err != nil {
			return s, nil, err
		}
		if len(patterns) == 0 {
			return s, def, nil
		}
		for _, e := range def {
			patterns = append(patterns, e.ID)
		}
	}
	sel, err := experiments.Select(patterns...)
	return s, sel, err
}

// Run is the one entry point of the experiment API: it resolves the
// Spec's selection against the registry, builds a shared Session
// (campaign, packet labs and testbed are generated lazily, once), and
// executes the selected experiments in catalogue order.
//
// Cancelling ctx aborts the run promptly — campaign generation and the
// opt-in labs stop at fleet-shard granularity, the packet labs at their
// simulation-slice boundaries — and Run returns ctx.Err(). On any error
// the results completed so far are returned alongside it, and — when
// ResultsDir is set — written to disk, so an interrupted long campaign
// loses only the experiment in flight.
func Run(ctx context.Context, spec Spec, opts ...Option) ([]*Result, error) {
	for _, o := range opts {
		o(&spec)
	}
	spec, sel, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	if spec.SkipPacket {
		kept := sel[:0]
		for _, e := range sel {
			if !e.Needs.Packet {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 && len(sel) > 0 {
			// An explicit selection must not silently shrink to nothing
			// (Select enforces the same for unmatched patterns).
			return nil, fmt.Errorf("selection %v contains only packet-level experiments, which SkipPacket excludes", spec.Experiments)
		}
		sel = kept
	}

	// The observer serializes shard events from the fleet workers into
	// Progress callbacks and collects the per-shard timings the manifest
	// records. It chains any observer the caller installed on the Fleet
	// config.
	obs := &runObserver{progress: spec.Progress, next: spec.Fleet.Observer}
	fc := spec.Fleet
	fc.Observer = obs.observe

	session := &Session{
		Seed:       spec.Seed,
		Scale:      spec.Scale,
		Fleet:      fc,
		Quick:      spec.Quick,
		FleetScale: spec.FleetScale,
		Profiles:   spec.Profiles,
		Backend:    spec.Backend,
		Scenario:   spec.Scenario,
	}
	// The results checkpoint keys on the spec fingerprint (worker counts
	// excluded — they never change results), so a resumed run can only
	// reuse results its own spec would have produced.
	var ckpt *campaign.ResultsCheckpoint
	var resumedExperiments int
	if spec.Checkpoint != "" {
		ckpt, err = campaign.OpenResultsCheckpoint(spec.Checkpoint, runFingerprint(spec, sel), spec.Resume)
		if err != nil {
			return nil, err
		}
	}

	results := make([]*Result, 0, len(sel))
	var expTimings []telemetry.ExperimentTiming
	// flush persists whatever completed plus the run manifest; on a
	// failed run the original error wins over a secondary write failure.
	flush := func(runErr error) error {
		if spec.ResultsDir == "" {
			return runErr
		}
		if len(results) > 0 {
			if err := WriteResults(spec.ResultsDir, results); err != nil {
				if runErr == nil {
					runErr = err
				}
				return runErr
			}
		}
		m := telemetry.NewManifest(spec.Seed)
		m.Spec = specProvenance(spec, sel)
		m.Experiments = expTimings
		m.Shards = obs.shardTimings()
		if spec.Resume && spec.Checkpoint != "" {
			m.Resume = &telemetry.ResumeInfo{
				Checkpoint:         spec.Checkpoint,
				ResumedExperiments: resumedExperiments,
			}
		}
		if err := writeManifest(spec.ResultsDir, m); err != nil && runErr == nil {
			runErr = err
		}
		return runErr
	}
	emit := func(p Progress) {
		if spec.Progress != nil {
			spec.Progress(p)
		}
	}
	for i, e := range sel {
		if err := ctx.Err(); err != nil {
			return results, flush(err)
		}
		obs.setCurrent(e.ID, e.Title, i+1, len(sel))
		emit(Progress{ID: e.ID, Title: e.Title, Index: i + 1, Total: len(sel)})
		if ckpt != nil {
			var r Result
			ok, lerr := ckpt.Lookup(e.ID, &r)
			if lerr != nil {
				return results, flush(fmt.Errorf("experiment %s: loading checkpointed result: %w", e.ID, lerr))
			}
			if ok {
				// The stored result carries the provenance meta it was
				// annotated with when first computed; annotate skips it.
				results = append(results, &r)
				resumedExperiments++
				mExperimentsResumed.Inc()
				expTimings = append(expTimings, telemetry.ExperimentTiming{ID: e.ID, Title: e.Title})
				emit(Progress{ID: e.ID, Title: e.Title, Index: i + 1, Total: len(sel), Done: true})
				continue
			}
		}
		start := time.Now()
		r, err := e.Run(ctx, session)
		elapsed := time.Since(start)
		mExperimentSeconds.Observe(elapsed)
		t := telemetry.ExperimentTiming{ID: e.ID, Title: e.Title, Seconds: elapsed.Seconds()}
		if err != nil {
			err = fmt.Errorf("experiment %s: %w", e.ID, err)
			t.Err = err.Error()
			expTimings = append(expTimings, t)
			emit(Progress{ID: e.ID, Title: e.Title, Index: i + 1, Total: len(sel), Done: true, Err: err, Elapsed: elapsed})
			return results, flush(err)
		}
		expTimings = append(expTimings, t)
		annotate(r, spec, elapsed)
		results = append(results, r)
		if ckpt != nil && r != nil {
			if err := ckpt.Record(e.ID, r); err != nil {
				return results, flush(fmt.Errorf("experiment %s: recording checkpoint: %w", e.ID, err))
			}
		}
		emit(Progress{ID: e.ID, Title: e.Title, Index: i + 1, Total: len(sel), Done: true, Elapsed: elapsed})
	}
	return results, flush(nil)
}

// RunManifest is the machine-readable provenance record a Run with
// ResultsDir writes as manifest.json: execution environment, flattened
// spec, per-experiment and per-shard timings, and a full telemetry
// snapshot.
type RunManifest = telemetry.Manifest

// LoadRunManifest parses and validates a run manifest written by Run (or
// by cmd/dropsim -manifest).
func LoadRunManifest(path string) (*RunManifest, error) { return telemetry.LoadManifest(path) }

// mExperimentSeconds times each experiment's Run.
var mExperimentSeconds = telemetry.NewHist("run.experiment_seconds")

// mExperimentsResumed counts experiments loaded from a results checkpoint
// instead of recomputed.
var mExperimentsResumed = telemetry.NewCounter("run.experiments_resumed")

// runFingerprint derives the results-checkpoint identity from the run's
// flattened provenance, excluding keys that cannot change results
// (workers only affects wall-clock time). Sorted key order keeps the
// canonical string stable across Go map iteration.
func runFingerprint(spec Spec, sel []Experiment) string {
	prov := specProvenance(spec, sel)
	delete(prov, "workers")
	keys := make([]string, 0, len(prov))
	for k := range prov {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys)+1)
	parts = append(parts, "run|v1")
	for _, k := range keys {
		parts = append(parts, k+"="+prov[k])
	}
	return campaign.Fingerprint(strings.Join(parts, "|"))
}

// runObserver adapts fleet.ShardEvents into shard-granularity Progress
// events and the manifest's per-shard timing records. Fleet workers call
// observe concurrently (including from the four parallel vantage points of
// the fleet lab); the mutex serializes both the Progress callbacks and the
// timing log.
type runObserver struct {
	mu       sync.Mutex
	progress func(Progress)
	next     func(fleet.ShardEvent)

	id           string // current experiment identity
	title        string
	index, total int

	vps     map[string]*vpProgress
	timings []telemetry.ShardTiming
}

// vpProgress tracks one (experiment, vantage point) generation run.
type vpProgress struct {
	start   time.Time
	records int64
}

func (o *runObserver) setCurrent(id, title string, index, total int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.id, o.title, o.index, o.total = id, title, index, total
}

func (o *runObserver) shardTimings() []telemetry.ShardTiming {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.timings
}

func (o *runObserver) observe(ev fleet.ShardEvent) {
	o.mu.Lock()
	defer o.mu.Unlock()
	key := o.id + "/" + ev.VP
	if o.vps == nil {
		o.vps = make(map[string]*vpProgress)
	}
	vp := o.vps[key]
	if vp == nil {
		// Backdate the VP's start to this first shard's own start so
		// single-shard runs still get a meaningful rate.
		vp = &vpProgress{start: time.Now().Add(-ev.Elapsed)}
		o.vps[key] = vp
	}
	vp.records += int64(ev.Records)
	o.timings = append(o.timings, telemetry.ShardTiming{
		Experiment: o.id,
		VP:         ev.VP,
		Shard:      ev.Shard,
		Shards:     ev.Shards,
		Records:    int64(ev.Records),
		Seconds:    ev.Elapsed.Seconds(),
	})
	if o.progress != nil {
		p := Progress{
			ID: o.id, Title: o.title, Index: o.index, Total: o.total,
			VP:         ev.VP,
			Shard:      ev.Shard,
			Shards:     ev.Shards,
			ShardsDone: ev.Done,
			Records:    vp.records,
			Elapsed:    ev.Elapsed,
		}
		if wall := time.Since(vp.start); wall > 0 {
			p.RecordsPerSec = float64(vp.records) / wall.Seconds()
			if ev.Done > 0 && ev.Done < ev.Shards {
				// Scale elapsed wall time by remaining/completed shards:
				// crude, but stable under the pool's parallelism because
				// both sides saw the same worker count.
				p.ETA = time.Duration(float64(wall) * float64(ev.Shards-ev.Done) / float64(ev.Done))
			}
		}
		o.progress(p)
	}
	if o.next != nil {
		o.next(ev)
	}
}

// specProvenance flattens the run's effective configuration for the
// manifest.
func specProvenance(spec Spec, sel []Experiment) map[string]string {
	ids := make([]string, len(sel))
	for i, e := range sel {
		ids[i] = e.ID
	}
	m := map[string]string{
		"seed":          strconv.FormatInt(spec.Seed, 10),
		"shards":        strconv.Itoa(max(spec.Fleet.Shards, 1)),
		"workers":       strconv.Itoa(spec.Fleet.Workers),
		"scale_campus1": strconv.FormatFloat(spec.Scale.Campus1, 'g', -1, 64),
		"experiments":   strings.Join(ids, ","),
	}
	if spec.Quick {
		m["quick"] = "true"
	}
	if spec.SkipPacket {
		m["skip_packet"] = "true"
	}
	if spec.FleetScale > 0 {
		m["fleet_scale"] = strconv.FormatFloat(spec.FleetScale, 'g', -1, 64)
	}
	if len(spec.Profiles) > 0 {
		m["profiles"] = strconv.Itoa(len(spec.Profiles))
	}
	if spec.Backend != "" {
		m["backend"] = spec.Backend
	}
	if spec.Scenario != nil {
		m["scenario"] = spec.Scenario.Name
	}
	return m
}

// writeManifest saves the run manifest into dir (creating it — a failed
// run may not have written any results yet).
func writeManifest(dir string, m *telemetry.Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return m.Save(filepath.Join(dir, telemetry.ManifestFile))
}

// annotate attaches the run's provenance metadata to a result, in a fixed
// key order WriteResults preserves. The environment and timing keys come
// after the legacy ones, so consumers reading a meta prefix are
// undisturbed.
func annotate(r *Result, spec Spec, elapsed time.Duration) {
	if r == nil || len(r.Meta) > 0 {
		return
	}
	r.AddMeta("seed", strconv.FormatInt(spec.Seed, 10))
	r.AddMeta("shards", strconv.Itoa(max(spec.Fleet.Shards, 1)))
	r.AddMeta("scale_campus1", strconv.FormatFloat(spec.Scale.Campus1, 'g', -1, 64))
	if spec.Quick {
		r.AddMeta("quick", "true")
	}
	r.AddMeta("go_version", runtime.Version())
	r.AddMeta("gomaxprocs", strconv.Itoa(runtime.GOMAXPROCS(0)))
	r.AddMeta("duration", elapsed.Round(time.Millisecond).String())
}

// ---------- ctx-aware campaign and lab entry points ----------

// NewCampaign materializes the four vantage-point datasets through the
// sharded fleet engine. fc.Shards == 1 reproduces the historical
// sequential generator bit for bit; cancellation aborts at fleet-shard
// granularity.
func NewCampaign(ctx context.Context, seed int64, scale ScaleConfig, fc FleetConfig) (*Campaign, error) {
	return experiments.NewCampaign(ctx, seed, scale, fc)
}

// RunFleet streams all four vantage points through the sharded fleet
// engine with bounded memory: records are aggregated as they are
// generated and never accumulated, so FleetConfig.DevicesScale can grow
// the population far past what NewCampaign could hold.
func RunFleet(ctx context.Context, seed int64, scale ScaleConfig, fc FleetConfig) (*FleetReport, error) {
	return experiments.RunFleet(ctx, seed, scale, fc)
}

// WhatIf executes a capability what-if campaign. Every profile's run is
// bit-reproducible from (seed, population, shards, profile), and the two
// Dropbox presets reproduce the legacy Version-based campaign output
// exactly.
func WhatIf(ctx context.Context, cfg WhatIfConfig) (*WhatIfReport, error) {
	return cfg.Run(ctx)
}

// Summarize streams one vantage point through the engine's bounded-memory
// aggregation path, returning the streaming summary and generation ground
// truth.
func Summarize(ctx context.Context, cfg VPConfig, seed int64, fc FleetConfig) (*FleetSummary, FleetStats, error) {
	return fleet.Summarize(ctx, cfg, seed, fc)
}

// ---------- streaming record iterators ----------

// Records exposes one vantage point's generated flow records as an
// iterator, in canonical shard order with bounded buffering — the one
// record-stream abstraction trace export, fleet aggregation and user
// analysis share. Breaking the loop tears the generating workers down
// cleanly; a cancelled ctx surfaces as the final (nil, err) pair:
//
//	for r, err := range insidedropbox.Records(ctx, cfg, seed, fc) {
//		if err != nil { return err }
//		// consume r
//	}
func Records(ctx context.Context, cfg VPConfig, seed int64, fc FleetConfig) iter.Seq2[*FlowRecord, error] {
	return fleet.Records(ctx, cfg, seed, fc)
}

// StreamRecords is the callback form of Records, for consumers that also
// need the run's FleetStats: emit receives every record in canonical
// shard order until it returns false (a clean stop) or ctx is cancelled
// (surfaced as ctx.Err()). The stats describe generation: after an early
// stop they include in-flight shards whose output was discarded, so
// count deliveries in emit when the distinction matters.
func StreamRecords(ctx context.Context, cfg VPConfig, seed int64, fc FleetConfig, emit func(*FlowRecord) bool) (FleetStats, error) {
	return fleet.StreamRecords(ctx, cfg, seed, fc, emit)
}

// WriteRecordStream drains a record iterator into a RecordWriter (CSV or
// binary) and flushes it: the three-line export path.
func WriteRecordStream(w RecordWriter, seq iter.Seq2[*FlowRecord, error]) error {
	for r, err := range seq {
		if err != nil {
			return err
		}
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return w.Flush()
}

// RecordReader is the streaming source every trace deserialization
// implements (BinaryTraceReader, FlateTraceReader): Read returns records
// until io.EOF. The inverse of RecordWriter.
type RecordReader interface {
	Read() (*FlowRecord, error)
}

// ReadRecords adapts a RecordReader into the same iterator shape Records
// produces, so an archived trace file re-streams through exactly the
// code paths a live generation run feeds — analysis, aggregation, or
// re-serialization. io.EOF ends the sequence cleanly; any other error
// surfaces as the final (nil, err) pair:
//
//	f, _ := os.Open("campaign.idbf")
//	seq := insidedropbox.ReadRecords(insidedropbox.NewFlateTraceReader(f))
//	for r, err := range seq { ... }
//
// Seek the reader first (FlateTraceReader.SeekToRecord) to re-stream
// just a shard or record range of an archival file.
func ReadRecords(r RecordReader) iter.Seq2[*FlowRecord, error] {
	return func(yield func(*FlowRecord, error) bool) {
		for {
			rec, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				yield(nil, err)
				return
			}
			if !yield(rec, nil) {
				return
			}
		}
	}
}
