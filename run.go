package insidedropbox

import (
	"context"
	"fmt"
	"iter"
	"strconv"

	"insidedropbox/internal/experiments"
	"insidedropbox/internal/fleet"
)

// Spec is the one description of an experiment run: seed, population
// scale, fleet sizing, experiment selection and the opt-in lab
// configuration. The zero value is runnable — it selects the default
// catalogue (every table and figure) at DefaultScale with one shard per
// vantage point. Functional options (WithShards, WithProfiles, ...) layer
// adjustments on top of a Spec literal; both styles set the same fields.
type Spec struct {
	// Seed is the campaign seed every vantage point and lab derives from.
	Seed int64

	// Scale is the per-vantage-point population scaling. The zero value
	// resolves to DefaultScale (SmallScale when Quick is set).
	Scale ScaleConfig

	// Fleet sizes the sharded engine used for campaign generation:
	// Shards changes the drawn population sample (part of the experiment
	// definition), Workers only wall-clock time.
	Fleet FleetConfig

	// Experiments selects the catalogue subset to run, as glob-style
	// patterns over experiment IDs ("table4", "figure*", "figure1?").
	// Empty means the default selection: every non-opt-in experiment,
	// plus "whatif" when Profiles is set and "fleet" when FleetScale > 0.
	Experiments []string

	// Quick shrinks the packet labs and is the cue to default Scale to
	// SmallScale — the -quick CLI behaviour.
	Quick bool

	// SkipPacket drops the packet-level experiments (figures 1, 9, 10,
	// 19) from the selection.
	SkipPacket bool

	// Profiles configures the "whatif" lab and opts it into the default
	// selection. Nil leaves the lab opt-in (selected explicitly, it runs
	// the full preset catalogue).
	Profiles []CapabilityProfile

	// FleetScale configures the "fleet" lab's device multiplier and opts
	// it into the default selection when > 0.
	FleetScale float64

	// ResultsDir, when non-empty, receives the rendered results via
	// WriteResults after the run completes.
	ResultsDir string

	// Progress, when non-nil, observes the run: one event as each
	// experiment starts and one as it completes.
	Progress func(Progress)
}

// Progress is one run observation event.
type Progress struct {
	// ID and Title identify the experiment.
	ID, Title string
	// Index is the experiment's 1-based position of Total selected.
	Index, Total int
	// Done is false when the experiment starts, true when it completes.
	Done bool
}

// Option adjusts a Spec. Options are applied in order after the Spec
// literal, so later options win.
type Option func(*Spec)

// WithSeed sets the campaign seed.
func WithSeed(seed int64) Option { return func(s *Spec) { s.Seed = seed } }

// WithScale sets the per-vantage-point population scaling.
func WithScale(sc ScaleConfig) Option { return func(s *Spec) { s.Scale = sc } }

// WithShards routes campaign generation through that many deterministic
// population shards per vantage point (1 reproduces the historical
// datasets; the shard count is part of the experiment definition).
func WithShards(n int) Option { return func(s *Spec) { s.Fleet.Shards = n } }

// WithWorkers bounds the generation worker pool (0 = GOMAXPROCS; worker
// counts never change results, only wall-clock time).
func WithWorkers(n int) Option { return func(s *Spec) { s.Fleet.Workers = n } }

// WithExperiments selects the experiments to run, as glob-style patterns
// over catalogue IDs.
func WithExperiments(patterns ...string) Option {
	return func(s *Spec) { s.Experiments = append(s.Experiments, patterns...) }
}

// WithProfiles configures the capability what-if lab and opts it into the
// default selection.
func WithProfiles(profiles ...CapabilityProfile) Option {
	return func(s *Spec) { s.Profiles = append(s.Profiles, profiles...) }
}

// WithFleetScale configures the streaming fleet lab's device multiplier
// and opts it into the default selection.
func WithFleetScale(scale float64) Option { return func(s *Spec) { s.FleetScale = scale } }

// WithQuick selects small populations and quick packet labs.
func WithQuick() Option { return func(s *Spec) { s.Quick = true } }

// WithSkipPacket drops the packet-level experiments from the selection.
func WithSkipPacket() Option { return func(s *Spec) { s.SkipPacket = true } }

// WithProgress installs a run observer.
func WithProgress(fn func(Progress)) Option { return func(s *Spec) { s.Progress = fn } }

// WithResultsDir writes rendered results to dir after the run.
func WithResultsDir(dir string) Option { return func(s *Spec) { s.ResultsDir = dir } }

// Experiments returns the full experiment catalogue — every table, figure
// and lab, each with a unique ID — in presentation order.
func Experiments() []Experiment { return experiments.Experiments() }

// ExperimentByID resolves one catalogue entry by its exact ID.
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// SelectExperiments resolves glob-style patterns against the catalogue
// (no patterns = the default selection). A pattern matching nothing is an
// error.
func SelectExperiments(patterns ...string) ([]Experiment, error) {
	return experiments.Select(patterns...)
}

// resolve fills a Spec's defaulted fields and computes its selection.
func (s Spec) resolve() (Spec, []Experiment, error) {
	if s.Scale == (ScaleConfig{}) {
		if s.Quick {
			s.Scale = SmallScale()
		} else {
			s.Scale = DefaultScale()
		}
	}
	patterns := s.Experiments
	if len(patterns) == 0 {
		// The default selection, with the opt-in labs joining when the
		// Spec configures them — the historical CLI contract.
		if len(s.Profiles) > 0 {
			patterns = append(patterns, "whatif")
		}
		if s.FleetScale > 0 {
			patterns = append(patterns, "fleet")
		}
		def, err := experiments.Select()
		if err != nil {
			return s, nil, err
		}
		if len(patterns) == 0 {
			return s, def, nil
		}
		for _, e := range def {
			patterns = append(patterns, e.ID)
		}
	}
	sel, err := experiments.Select(patterns...)
	return s, sel, err
}

// Run is the one entry point of the experiment API: it resolves the
// Spec's selection against the registry, builds a shared Session
// (campaign, packet labs and testbed are generated lazily, once), and
// executes the selected experiments in catalogue order.
//
// Cancelling ctx aborts the run promptly — campaign generation and the
// opt-in labs stop at fleet-shard granularity, the packet labs at their
// simulation-slice boundaries — and Run returns ctx.Err(). On any error
// the results completed so far are returned alongside it, and — when
// ResultsDir is set — written to disk, so an interrupted long campaign
// loses only the experiment in flight.
func Run(ctx context.Context, spec Spec, opts ...Option) ([]*Result, error) {
	for _, o := range opts {
		o(&spec)
	}
	spec, sel, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	if spec.SkipPacket {
		kept := sel[:0]
		for _, e := range sel {
			if !e.Needs.Packet {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 && len(sel) > 0 {
			// An explicit selection must not silently shrink to nothing
			// (Select enforces the same for unmatched patterns).
			return nil, fmt.Errorf("selection %v contains only packet-level experiments, which SkipPacket excludes", spec.Experiments)
		}
		sel = kept
	}

	session := &Session{
		Seed:       spec.Seed,
		Scale:      spec.Scale,
		Fleet:      spec.Fleet,
		Quick:      spec.Quick,
		FleetScale: spec.FleetScale,
		Profiles:   spec.Profiles,
	}
	results := make([]*Result, 0, len(sel))
	// flush persists whatever completed; on a failed run the original
	// error wins over a secondary write failure.
	flush := func(runErr error) error {
		if spec.ResultsDir == "" || len(results) == 0 {
			return runErr
		}
		if err := WriteResults(spec.ResultsDir, results); err != nil && runErr == nil {
			return err
		}
		return runErr
	}
	for i, e := range sel {
		if err := ctx.Err(); err != nil {
			return results, flush(err)
		}
		if spec.Progress != nil {
			spec.Progress(Progress{ID: e.ID, Title: e.Title, Index: i + 1, Total: len(sel)})
		}
		r, err := e.Run(ctx, session)
		if err != nil {
			return results, flush(fmt.Errorf("experiment %s: %w", e.ID, err))
		}
		annotate(r, spec)
		results = append(results, r)
		if spec.Progress != nil {
			spec.Progress(Progress{ID: e.ID, Title: e.Title, Index: i + 1, Total: len(sel), Done: true})
		}
	}
	return results, flush(nil)
}

// annotate attaches the run's provenance metadata to a result, in a fixed
// key order WriteResults preserves.
func annotate(r *Result, spec Spec) {
	if r == nil || len(r.Meta) > 0 {
		return
	}
	r.AddMeta("seed", strconv.FormatInt(spec.Seed, 10))
	r.AddMeta("shards", strconv.Itoa(max(spec.Fleet.Shards, 1)))
	r.AddMeta("scale_campus1", strconv.FormatFloat(spec.Scale.Campus1, 'g', -1, 64))
	if spec.Quick {
		r.AddMeta("quick", "true")
	}
}

// ---------- ctx-aware campaign and lab entry points ----------

// NewCampaign materializes the four vantage-point datasets through the
// sharded fleet engine. fc.Shards == 1 reproduces the historical
// sequential generator bit for bit; cancellation aborts at fleet-shard
// granularity.
func NewCampaign(ctx context.Context, seed int64, scale ScaleConfig, fc FleetConfig) (*Campaign, error) {
	return experiments.NewCampaign(ctx, seed, scale, fc)
}

// RunFleet streams all four vantage points through the sharded fleet
// engine with bounded memory: records are aggregated as they are
// generated and never accumulated, so FleetConfig.DevicesScale can grow
// the population far past what NewCampaign could hold.
func RunFleet(ctx context.Context, seed int64, scale ScaleConfig, fc FleetConfig) (*FleetReport, error) {
	return experiments.RunFleet(ctx, seed, scale, fc)
}

// WhatIf executes a capability what-if campaign. Every profile's run is
// bit-reproducible from (seed, population, shards, profile), and the two
// Dropbox presets reproduce the legacy Version-based campaign output
// exactly.
func WhatIf(ctx context.Context, cfg WhatIfConfig) (*WhatIfReport, error) {
	return cfg.Run(ctx)
}

// Summarize streams one vantage point through the engine's bounded-memory
// aggregation path, returning the streaming summary and generation ground
// truth.
func Summarize(ctx context.Context, cfg VPConfig, seed int64, fc FleetConfig) (*FleetSummary, FleetStats, error) {
	return fleet.Summarize(ctx, cfg, seed, fc)
}

// ---------- streaming record iterators ----------

// Records exposes one vantage point's generated flow records as an
// iterator, in canonical shard order with bounded buffering — the one
// record-stream abstraction trace export, fleet aggregation and user
// analysis share. Breaking the loop tears the generating workers down
// cleanly; a cancelled ctx surfaces as the final (nil, err) pair:
//
//	for r, err := range insidedropbox.Records(ctx, cfg, seed, fc) {
//		if err != nil { return err }
//		// consume r
//	}
func Records(ctx context.Context, cfg VPConfig, seed int64, fc FleetConfig) iter.Seq2[*FlowRecord, error] {
	return fleet.Records(ctx, cfg, seed, fc)
}

// StreamRecords is the callback form of Records, for consumers that also
// need the run's FleetStats: emit receives every record in canonical
// shard order until it returns false (a clean stop) or ctx is cancelled
// (surfaced as ctx.Err()). The stats describe generation: after an early
// stop they include in-flight shards whose output was discarded, so
// count deliveries in emit when the distinction matters.
func StreamRecords(ctx context.Context, cfg VPConfig, seed int64, fc FleetConfig, emit func(*FlowRecord) bool) (FleetStats, error) {
	return fleet.StreamRecords(ctx, cfg, seed, fc, emit)
}

// WriteRecordStream drains a record iterator into a RecordWriter (CSV or
// binary) and flushes it: the three-line export path.
func WriteRecordStream(w RecordWriter, seq iter.Seq2[*FlowRecord, error]) error {
	for r, err := range seq {
		if err != nil {
			return err
		}
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return w.Flush()
}
