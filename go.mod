module insidedropbox

go 1.24
